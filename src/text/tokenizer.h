#ifndef PS2_TEXT_TOKENIZER_H_
#define PS2_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ps2 {

// Splits raw message text into lowercase terms. This mirrors the minimal
// preprocessing a tweet-stream deployment would apply before indexing:
// alphanumeric runs become terms, everything else is a separator, and terms
// shorter than `min_term_length` are dropped.
class Tokenizer {
 public:
  explicit Tokenizer(size_t min_term_length = 2)
      : min_term_length_(min_term_length) {}

  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  size_t min_term_length_;
};

}  // namespace ps2

#endif  // PS2_TEXT_TOKENIZER_H_
