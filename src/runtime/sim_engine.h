#ifndef PS2_RUNTIME_SIM_ENGINE_H_
#define PS2_RUNTIME_SIM_ENGINE_H_

#include <vector>

#include "adjust/load_controller.h"
#include "adjust/local_adjust.h"
#include "runtime/engine.h"
#include "runtime/metrics.h"

namespace ps2 {

// Deterministic event-driven simulation of the cluster under a paced input
// stream, including dynamic load adjustments and their latency side
// effects. Matching is executed for real (through the Cluster); *time* is
// virtual: tuples arrive at `arrival_rate_tps`, each delivery occupies its
// worker for a constant per-kind service time, and a migration blocks the
// two involved workers for the modeled migration duration. This reproduces
// the paper's Figures 12(b,c), 14, 15 and 16 without the nondeterminism of
// wall-clock scheduling.
class DeliverySink;

struct SimOptions {
  double arrival_rate_tps = 50000.0;
  // When non-null, every merger-fresh match is delivered through this sink
  // (in-process: a DeliveryRouter, so matches reach the routed subscriber
  // sessions) with *virtual* timestamps (publish = arrival, deliver = the
  // worker's service finish), so session latency histograms report
  // simulated publish->deliver time. Not owned.
  DeliverySink* delivery = nullptr;
  // Per-delivery service times. With measure_service = true, the *measured*
  // CPU time of the actual GI2 operation is used and these constants become
  // the fixed per-delivery overhead (queueing/serialization/network) added
  // on top — so partitioner differences in real matching cost show up in
  // worker utilization even on a single-core host. With false, the
  // constants alone are used (fully deterministic; unit tests use this).
  bool measure_service = false;
  double object_service_us = 8.0;
  double insert_service_us = 12.0;
  double delete_service_us = 4.0;
  // Definition-1 matching charge: processing an object at a worker costs
  // per_candidate_us for every live query stored in the probed cell (the
  // c1 * |O| * |Q| term of the paper's load model, which its partitioners
  // optimize and its evaluation validates). Space partitioning concentrates
  // a cell's queries on one worker; text partitioning spreads them, which
  // is precisely the asymmetry the paper's Q2 results hinge on. Applied
  // only when measure_service is true (capacity benchmarks).
  double per_candidate_us = 0.3;
  // Balance check cadence (in tuples) and the adjuster configuration.
  bool enable_adjust = true;
  size_t adjust_check_interval = 25000;
  LocalAdjustConfig adjust;
  // Recent-tuple window used for Phase I term statistics.
  size_t window_capacity = 40000;
  // Tuples per capacity-accounting window (throughput_windowed_tps).
  size_t capacity_window = 5000;
};

struct SimMigrationEvent {
  double sim_time_s = 0.0;
  AdjustReport report;
};

struct SimReport {
  uint64_t tuples = 0;
  double sim_seconds = 0.0;
  LatencyHistogram latency;
  std::vector<SimMigrationEvent> migrations;

  // Aggregates over migrations that actually moved data.
  double avg_migration_bytes = 0.0;
  double avg_migration_seconds = 0.0;
  double avg_selection_ms = 0.0;
  int num_migrations = 0;

  // Latency bucket fractions (Figures 12c / 15).
  double frac_below_100ms = 0.0;
  double frac_100_to_1000ms = 0.0;
  double frac_above_1000ms = 0.0;

  // Capacity estimate: arrival rate / utilization of the busiest worker,
  // cumulative over the whole run. Right metric for stationary workloads.
  double throughput_estimate_tps = 0.0;

  // Windowed capacity estimate: arrival rate / mean-over-windows of the
  // *per-window* busiest-worker utilization. Under drifting workloads the
  // hotspot moves between workers; cumulative utilization averages that
  // out and hides the bottleneck, while the windowed estimate tracks the
  // sustained rate the system could actually absorb (used by Figure 16).
  double throughput_windowed_tps = 0.0;

  uint64_t matches_delivered = 0;
};

SimReport RunSimulation(Cluster& cluster,
                        const std::vector<StreamTuple>& input,
                        const SimOptions& options);

// Engine-interface adapter over RunSimulation: the virtual-time twin of
// ThreadedEngine. Run() maps the SimReport onto the common RunReport shape
// (wall_seconds = simulated seconds, throughput = windowed capacity
// estimate); the full simulation detail stays available via sim_report().
class SimEngine : public Engine {
 public:
  SimEngine(Cluster& cluster, SimOptions options = SimOptions())
      : cluster_(cluster), options_(std::move(options)) {}

  std::string name() const override { return "sim"; }
  RunReport Run(const std::vector<StreamTuple>& input) override;

  const SimReport& sim_report() const { return sim_report_; }

 private:
  Cluster& cluster_;
  SimOptions options_;
  SimReport sim_report_;
};

}  // namespace ps2

#endif  // PS2_RUNTIME_SIM_ENGINE_H_
