#include "runtime/threaded_engine.h"

#include <algorithm>
#include <functional>

#include "adjust/touch_tracking_executor.h"
#include "api/delivery_router.h"
#include "common/stopwatch.h"
#include "persist/wal.h"

namespace ps2 {

// ---------------------------------------------------------------------------
// Internal types
// ---------------------------------------------------------------------------

struct ThreadedEngine::Latch {
  explicit Latch(size_t n) : count(n) {}
  std::mutex mu;
  std::condition_variable cv;
  size_t count;

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu);
    if (count > 0 && --count == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return count == 0; });
  }
};

// Work item delivered to a worker thread. A non-null `marker` makes it a
// control item: the worker acknowledges it and skips the payload — the
// controller uses this to learn that everything enqueued before a routing
// swap has drained.
struct ThreadedEngine::WorkItem {
  StreamTuple tuple;
  std::vector<CellId> cells;  // for query updates
  int64_t enqueue_us = 0;
  // Publish timestamp stamped at Submit(); session delivery latency is
  // measured from here (enqueue_us only covers the worker-queue dwell).
  int64_t submit_us = 0;
  std::shared_ptr<Latch> marker;
};

// Input-queue element: the tuple plus its update-ordering gate stamp.
struct ThreadedEngine::SeqTuple {
  StreamTuple tuple;
  uint64_t updates_before = 0;
  int64_t submit_us = 0;
};

struct ThreadedEngine::WorkerState {
  std::mutex mu;  // guards this worker's Gi2 (worker thread vs controller)
  std::atomic<uint64_t> objects{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> deletes{0};
  // Matches produced by this worker's Gi2, pre-merger (duplicates across
  // workers still included); exported as RunReport::matches_emitted.
  std::atomic<uint64_t> matches_emitted{0};
  // Query-update flow accounting for the migration barrier: the controller
  // only copies cell contents once every routed update has reached its
  // worker's Gi2 (enqueued == applied).
  std::atomic<uint64_t> query_items_enqueued{0};
  std::atomic<uint64_t> query_items_applied{0};
  uint64_t tuples = 0;        // worker-thread local, read after join
  LatencyHistogram latency;   // worker-thread local, read after join
};

struct ThreadedEngine::DispatcherState {
  DispatchStats stats;  // thread-local; merged into the report on Stop
  std::vector<WorkerId> scratch;

  // Version of the epoch this dispatcher is currently routing an object
  // against; UINT64_MAX when between objects. Stamped *before* the snapshot
  // is pinned, so the pinned snapshot's version is always >= the stamp —
  // the controller waits until every dispatcher's stamp reaches the new
  // epoch before it pushes drain markers, which guarantees that every
  // delivery derived from an older epoch is already in a worker queue.
  std::atomic<uint64_t> routing_epoch{UINT64_MAX};

  // Pinned snapshot, re-pinned only when the published version moves past
  // it — the steady-state object path pays one integer atomic load, not a
  // shared_ptr atomic load (which libstdc++ backs with a spinlock pool).
  std::shared_ptr<const RoutingSnapshot> snapshot;

  // Recent-tuple ring for the controller's Phase-I term statistics. The
  // mutex is dispatcher-local, so it is uncontended except while the
  // controller snapshots the window.
  std::mutex window_mu;
  std::deque<StreamTuple> window;
  size_t window_capacity = 0;

  void RecordWindow(const StreamTuple& t) {
    std::lock_guard<std::mutex> lock(window_mu);
    window.push_back(t);
    if (window.size() > window_capacity) window.pop_front();
  }
};

// ---------------------------------------------------------------------------
// Live migration executor: copy -> publish -> drain -> remove
// ---------------------------------------------------------------------------

// Runs inside ControllerCheck with the writer lock and every worker's Gi2
// lock held. Each movement installs query *copies* at the destination and
// rewrites the master routing; removal of the stale source copies is
// deferred until the pre-swap queue contents have drained (FinishRemovals),
// so an object routed against the old epoch still finds its queries.
class ThreadedEngine::LiveMigrationExecutor : public MigrationExecutor {
 public:
  explicit LiveMigrationExecutor(ThreadedEngine& engine) : engine_(engine) {}

  MigrationStats MigrateCell(CellId cell, WorkerId from,
                             WorkerId to) override {
    MigrationStats stats;
    if (from == to) return stats;
    Cluster& c = engine_.cluster_;
    Gi2Index& src = c.worker(from);
    stats.bytes = src.CellMigrationBytes(cell);
    std::vector<STSQuery> queries = src.CellQueries(cell);
    stats.queries_moved = queries.size();
    const std::vector<CellId> cells{cell};
    for (const auto& q : queries) c.worker(to).InsertIntoCells(q, cells);
    c.router().RemapCellWorker(cell, from, to);
    removals_.push_back({from, [cell](Gi2Index& g) { g.ExtractCell(cell); }});
    changed_ = true;
    return stats;
  }

  MigrationStats TextSplitCell(
      CellId cell, WorkerId keep, WorkerId to,
      const std::unordered_map<TermId, WorkerId>& term_map) override {
    MigrationStats stats;
    Cluster& c = engine_.cluster_;
    GridtIndex& index = c.router();
    std::vector<STSQuery> queries = c.worker(keep).CellQueries(cell);
    index.SetCellTextRoute(cell, term_map, {keep, to});
    std::shared_ptr<const TermRouter> router = index.plan().cells[cell].text;
    const std::vector<CellId> cells{cell};
    for (const auto& q : queries) {
      bool to_other = false;
      for (const TermId t : q.expr.RoutingTerms(c.vocab())) {
        index.AddH2(cell, t, router->Route(t));
        if (router->Route(t) != keep) to_other = true;
      }
      if (to_other) {
        c.worker(to).InsertIntoCells(q, cells);
        stats.queries_moved++;
        stats.bytes += q.MemoryBytes();
      }
    }
    const Vocabulary* vocab = &c.vocab();
    removals_.push_back(
        {keep, [cell, keep, router, vocab](Gi2Index& g) {
           // Drop the half that moved: re-index only queries with a term
           // still routed to `keep`.
           const std::vector<CellId> cs{cell};
           for (const auto& q : g.ExtractCell(cell)) {
             for (const TermId t : q.expr.RoutingTerms(*vocab)) {
               if (router->Route(t) == keep) {
                 g.InsertIntoCells(q, cs);
                 break;
               }
             }
           }
         }});
    changed_ = true;
    return stats;
  }

  MigrationStats MergeCellTo(CellId cell, WorkerId to) override {
    MigrationStats stats;
    Cluster& c = engine_.cluster_;
    const CellRoute& route = c.router().plan().cells[cell];
    std::vector<WorkerId> sources;
    if (route.IsText()) {
      sources = route.text->workers();
    } else {
      sources.push_back(route.worker);
    }
    const std::vector<CellId> cells{cell};
    for (const WorkerId w : sources) {
      if (w == to) continue;
      Gi2Index& src = c.worker(w);
      stats.bytes += src.CellMigrationBytes(cell);
      for (const auto& q : src.CellQueries(cell)) {
        c.worker(to).InsertIntoCells(q, cells);
        stats.queries_moved++;
      }
      removals_.push_back({w, [cell](Gi2Index& g) { g.ExtractCell(cell); }});
    }
    c.router().SetCellSpaceRoute(cell, to);
    changed_ = true;
    return stats;
  }

  bool changed() const { return changed_; }

  // Called after the new epoch is live and all locks are released.
  void FinishRemovals() {
    if (removals_.empty()) return;
    std::vector<WorkerId> affected;
    for (const auto& r : removals_) affected.push_back(r.worker);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    auto latch = std::make_shared<Latch>(affected.size());
    for (const WorkerId w : affected) {
      WorkItem marker;
      marker.marker = latch;
      // A closed queue means the engine is tearing down: its workers have
      // already drained, so the grace period is over by definition.
      if (!engine_.queues_[w]->Push(std::move(marker))) latch->CountDown();
    }
    latch->Wait();
    for (const auto& r : removals_) {
      std::lock_guard<std::mutex> lock(engine_.workers_[r.worker]->mu);
      r.fn(engine_.cluster_.worker(r.worker));
    }
    removals_.clear();
  }

 private:
  struct Removal {
    WorkerId worker;
    std::function<void(Gi2Index&)> fn;
  };

  ThreadedEngine& engine_;
  std::vector<Removal> removals_;
  bool changed_ = false;
};

// ---------------------------------------------------------------------------
// Engine lifecycle
// ---------------------------------------------------------------------------

ThreadedEngine::ThreadedEngine(Cluster& cluster, EngineOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      router_(&cluster.router()) {}

ThreadedEngine::~ThreadedEngine() {
  if (running_) Stop();
}

void ThreadedEngine::Start() {
  if (running_) return;
  const int num_workers = cluster_.num_workers();
  const int num_dispatchers = std::max(1, options_.num_dispatchers);

  input_ = std::make_unique<BoundedQueue<SeqTuple>>(options_.queue_capacity);
  queues_.clear();
  workers_.clear();
  dispatchers_.clear();
  for (int w = 0; w < num_workers; ++w) {
    queues_.push_back(
        std::make_unique<BoundedQueue<WorkItem>>(options_.queue_capacity));
    workers_.push_back(std::make_unique<WorkerState>());
  }
  for (int d = 0; d < num_dispatchers; ++d) {
    auto ds = std::make_unique<DispatcherState>();
    ds->window_capacity =
        options_.window_capacity / static_cast<size_t>(num_dispatchers) + 1;
    dispatchers_.push_back(std::move(ds));
  }
  controller_ = std::make_unique<LoadController>(options_.controller.config);

  // Starting the engine opens a fresh load-accounting window: the threaded
  // runtime tracks load in per-worker atomics, and stale synchronous
  // tallies would otherwise masquerade as live loads (e.g. in the
  // adjuster's post-migration balance estimate).
  cluster_.ResetLoadWindow();

  updates_submitted_.store(0);
  updates_published_.store(0);
  migrations_installed_.store(0, std::memory_order_relaxed);
  submitted_objects_ = submitted_inserts_ = submitted_deletes_ = 0;
  last_check_tuples_ = 0;
  collected_.clear();
  ctl_stop_ = false;
  discard_.store(false, std::memory_order_relaxed);
  start_us_ = NowMicros();
  running_ = true;

  for (int w = 0; w < num_workers; ++w) {
    worker_threads_.emplace_back(&ThreadedEngine::WorkerLoop, this, w);
  }
  for (int d = 0; d < num_dispatchers; ++d) {
    dispatcher_threads_.emplace_back(&ThreadedEngine::DispatchLoop, this,
                                     std::ref(*dispatchers_[d]));
  }
  if (options_.controller.enabled) {
    controller_thread_ = std::thread(&ThreadedEngine::ControllerLoop, this);
  }
}

bool ThreadedEngine::Submit(const StreamTuple& tuple) {
  if (!running_) return false;
  SeqTuple st;
  st.tuple = tuple;
  st.submit_us = NowMicros();
  if (tuple.kind == TupleKind::kObject) {
    st.updates_before = updates_submitted_.load(std::memory_order_relaxed);
    ++submitted_objects_;
  } else {
    st.updates_before =
        updates_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (tuple.kind == TupleKind::kQueryInsert) {
      ++submitted_inserts_;
    } else {
      ++submitted_deletes_;
    }
  }
  return input_->Push(std::move(st));
}

void ThreadedEngine::JoinAll() {
  if (controller_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ctl_mu_);
      ctl_stop_ = true;
    }
    ctl_cv_.notify_all();
    controller_thread_.join();
  }
  input_->Close();
  for (auto& t : dispatcher_threads_) t.join();
  dispatcher_threads_.clear();
  for (auto& q : queues_) q->Close();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
}

RunReport ThreadedEngine::Stop() {
  if (!running_) return RunReport{};
  JoinAll();
  wall_seconds_ = static_cast<double>(NowMicros() - start_us_) / 1e6;
  running_ = false;
  return AssembleReport();
}

void ThreadedEngine::Abort() {
  if (!running_) return;
  // From here on dispatchers and workers drop what they pop: the queues
  // still drain (so joins cannot hang on a full queue's backpressure), but
  // nothing is processed — queued tuples die as they would in a crash.
  discard_.store(true, std::memory_order_release);
  JoinAll();
  running_ = false;
  discard_.store(false, std::memory_order_release);
}

RunReport ThreadedEngine::Run(const std::vector<StreamTuple>& input) {
  Start();
  for (size_t i = 0; i < input.size(); ++i) {
    if (options_.input_rate_tps > 0.0) {
      // Pace the stream: tuple i is due at i / rate seconds.
      const int64_t due_us =
          start_us_ + static_cast<int64_t>(1e6 * i / options_.input_rate_tps);
      while (NowMicros() < due_us) {
        std::this_thread::yield();
      }
    }
    Submit(input[i]);
  }
  return Stop();
}

std::vector<MatchResult> ThreadedEngine::TakeMatches() {
  std::vector<MatchResult> out;
  TakeMatches(&out);
  return out;
}

void ThreadedEngine::TakeMatches(std::vector<MatchResult>* out) {
  out->clear();
  std::lock_guard<std::mutex> lock(merge_mu_);
  // Swap rather than copy: the caller's (cleared) buffer becomes the new
  // collection target, so a consumer draining in a loop ping-pongs two
  // warmed buffers instead of reallocating per drain.
  collected_.swap(*out);
}

// ---------------------------------------------------------------------------
// Dispatcher threads
// ---------------------------------------------------------------------------

void ThreadedEngine::DispatchLoop(DispatcherState& ds) {
  std::vector<SeqTuple> batch;  // reused across drains
  while (true) {
    input_->PopBatch(options_.batch_size, &batch);
    if (batch.empty()) break;  // closed and drained
    for (SeqTuple& st : batch) RouteOne(ds, st);
  }
}

void ThreadedEngine::RouteOne(DispatcherState& ds, SeqTuple& st) {
  const StreamTuple& tuple = st.tuple;
  // Update-ordering gate: all query updates submitted before this tuple
  // must be enqueued at their workers and published. Updates are a small
  // fraction of the stream, so this spin is almost always a single load.
  while (updates_published_.load(std::memory_order_acquire) <
         st.updates_before) {
    std::this_thread::yield();
  }
  if (discard_.load(std::memory_order_acquire)) {
    // Aborting: drop the tuple, but keep the update-ordering gate moving so
    // dispatchers spinning on it still drain.
    if (tuple.kind != TupleKind::kObject) {
      updates_published_.fetch_add(1, std::memory_order_release);
    }
    return;
  }
  const int64_t now = NowMicros();
  if (tuple.kind == TupleKind::kObject) {
    // Epoch handshake with the controller (Dekker pattern — the seq_cst
    // ordering is load-bearing). First announce "routing, epoch unknown"
    // (0), *then* read the version: if the controller's barrier scan saw
    // our idle/newer stamp, this read is ordered after its version store
    // and must observe the new epoch; otherwise the controller sees the 0
    // (or a stale stamp) and waits for us. A plain stamp-after-read could
    // let both sides miss each other through the store buffer, and a
    // delivery routed against the dead epoch could be enqueued behind the
    // drain markers.
    ds.routing_epoch.store(0);
    const uint64_t version = router_.CurrentVersion();
    ds.routing_epoch.store(version, std::memory_order_release);
    if (ds.snapshot == nullptr || ds.snapshot->version < version) {
      ds.snapshot = router_.Current();
    }
    ds.snapshot->RouteObject(tuple.object, &ds.scratch);
    if (ds.scratch.empty()) {
      ++ds.stats.objects_discarded;
    } else {
      ++ds.stats.objects_routed;
      ds.stats.object_deliveries += ds.scratch.size();
      for (const WorkerId w : ds.scratch) {
        WorkItem item;
        item.tuple = tuple;
        item.enqueue_us = now;
        item.submit_us = st.submit_us;
        queues_[w]->Push(std::move(item));
      }
    }
    ds.routing_epoch.store(UINT64_MAX, std::memory_order_release);
  } else {
    auto routes = tuple.kind == TupleKind::kQueryInsert
                      ? router_.RouteInsert(tuple.query, &update_pushes_)
                      : router_.RouteDelete(tuple.query, &update_pushes_);
    if (tuple.kind == TupleKind::kQueryInsert) {
      ++ds.stats.inserts_routed;
    } else {
      ++ds.stats.deletes_routed;
    }
    for (auto& r : routes) {
      ++ds.stats.query_deliveries;
      WorkItem item;
      item.tuple = tuple;
      item.cells = std::move(r.cells);
      item.enqueue_us = now;
      workers_[r.worker]->query_items_enqueued.fetch_add(1);
      queues_[r.worker]->Push(std::move(item));
    }
    update_pushes_.fetch_sub(1);
    updates_published_.fetch_add(1, std::memory_order_release);
  }
  if (options_.controller.enabled) ds.RecordWindow(tuple);
}

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

void ThreadedEngine::WorkerLoop(int w) {
  WorkerState& ws = *workers_[w];
  Gi2Index& gi2 = cluster_.worker(w);
  Merger& merger = cluster_.merger();
  // All reused across drains: batch storage, the object-run pointer list
  // and the match buffer keep their capacity, so the steady-state object
  // path performs no heap allocation in this loop.
  std::vector<WorkItem> batch;
  std::vector<const SpatioTextualObject*> run;
  std::vector<MatchResult> matches;
  std::vector<Delivery> pending;  // session deliveries staged per run
  while (true) {
    queues_[w]->PopBatch(options_.batch_size, &batch);
    if (batch.empty()) break;  // closed and drained
    size_t i = 0;
    while (i < batch.size()) {
      WorkItem& item = batch[i];
      if (item.marker != nullptr) {
        item.marker->CountDown();
        ++i;
        continue;
      }
      if (discard_.load(std::memory_order_acquire)) {
        // Aborting: drop the item, but a query update was counted as
        // enqueued when it was routed — the controller's migration barrier
        // spins on applied == enqueued, and Abort() joins the controller
        // first, so the counter must keep moving or the join deadlocks.
        if (item.tuple.kind != TupleKind::kObject) {
          ws.query_items_applied.fetch_add(1);
        }
        ++i;
        continue;
      }
      if (item.tuple.kind == TupleKind::kObject) {
        // Gather the run of consecutive objects and match them as one
        // batch: one Gi2 lock acquisition, one cell-grouped index pass.
        // Runs never cross a query update or drain marker — those are
        // ordering boundaries within this worker's queue.
        run.clear();
        size_t end = i;
        while (end < batch.size() && batch[end].marker == nullptr &&
               batch[end].tuple.kind == TupleKind::kObject) {
          run.push_back(&batch[end].tuple.object);
          ++end;
        }
        matches.clear();
        {
          std::lock_guard<std::mutex> lock(ws.mu);
          gi2.MatchBatch(run.data(), run.size(), &matches);
        }
        ws.objects.fetch_add(run.size(), std::memory_order_relaxed);
        ws.matches_emitted.fetch_add(matches.size(),
                                     std::memory_order_relaxed);
        if (!matches.empty()) {
          pending.clear();
          // Resolves a match's publish timestamp from the run items.
          // MatchBatch groups output by cell, so consecutive matches tend
          // to repeat objects: memoize the last hit and scan circularly.
          size_t probe = i;
          const auto submit_of = [&](ObjectId id) {
            const size_t n = end - i;
            for (size_t k = 0; k < n; ++k) {
              const size_t idx = i + (probe - i + k) % n;
              if (batch[idx].tuple.object.id == id) {
                probe = idx;
                return batch[idx].submit_us;
              }
            }
            return batch[i].submit_us;  // unreachable: every match's object is in the run
          };
          {
            std::lock_guard<std::mutex> lock(merge_mu_);
            for (const auto& m : matches) {
              const bool fresh = merger.Accept(m);
              if (!fresh) continue;
              if (options_.collect_matches) collected_.push_back(m);
              if (options_.delivery != nullptr) {
                Delivery d;
                d.query_id = m.query_id;
                d.object_id = m.object_id;
                d.publish_us = submit_of(m.object_id);
                pending.push_back(d);
              }
            }
          }
          // Deliver outside merge_mu_: a kBlock session may block this
          // worker on a full queue, and holding the merge lock there would
          // stall every other worker instead of just this one.
          if (!pending.empty()) {
            options_.delivery->DeliverBatch(pending.data(), pending.size());
          }
        }
        const int64_t done_us = NowMicros();
        for (size_t k = i; k < end; ++k) {
          ws.tuples++;
          ws.latency.Record(
              static_cast<double>(done_us - batch[k].enqueue_us));
        }
        i = end;
        continue;
      }
      if (item.tuple.kind == TupleKind::kQueryInsert) {
        {
          std::lock_guard<std::mutex> lock(ws.mu);
          gi2.InsertIntoCells(item.tuple.query, item.cells);
        }
        ws.inserts.fetch_add(1, std::memory_order_relaxed);
        ws.query_items_applied.fetch_add(1);
      } else {
        {
          std::lock_guard<std::mutex> lock(ws.mu);
          gi2.Delete(item.tuple.query.id);
        }
        ws.deletes.fetch_add(1, std::memory_order_relaxed);
        ws.query_items_applied.fetch_add(1);
      }
      ws.tuples++;
      ws.latency.Record(static_cast<double>(NowMicros() - item.enqueue_us));
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// Controller thread
// ---------------------------------------------------------------------------

void ThreadedEngine::ControllerLoop() {
  std::unique_lock<std::mutex> lock(ctl_mu_);
  while (!ctl_stop_) {
    ctl_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.controller.interval_ms));
    if (ctl_stop_) break;
    lock.unlock();
    ControllerCheck();
    lock.lock();
  }
}

void ThreadedEngine::ControllerCheck() {
  const auto& ctl = options_.controller;
  const CostModel& cm = ctl.config.adjust.cost;

  // Live per-worker tallies -> Definition-1 loads.
  uint64_t total_tuples = 0;
  std::vector<double> loads;
  std::vector<WorkerLoadTally> tallies;
  loads.reserve(workers_.size());
  tallies.reserve(workers_.size());
  for (const auto& ws : workers_) {
    WorkerLoadTally t;
    t.objects = ws->objects.load(std::memory_order_relaxed);
    t.inserts = ws->inserts.load(std::memory_order_relaxed);
    t.deletes = ws->deletes.load(std::memory_order_relaxed);
    total_tuples += t.objects + t.inserts + t.deletes;
    loads.push_back(WorkerLoad(cm, t));
    tallies.push_back(t);
  }
  if (total_tuples - last_check_tuples_ < ctl.min_tuples) return;
  last_check_tuples_ = total_tuples;
  if (BalanceFactor(loads) <= ctl.config.adjust.sigma) return;

  // Phase-I statistics from the dispatcher-local windows.
  WorkloadSample window;
  for (const auto& ds : dispatchers_) {
    std::lock_guard<std::mutex> lock(ds->window_mu);
    for (const StreamTuple& t : ds->window) {
      switch (t.kind) {
        case TupleKind::kObject:
          window.objects.push_back(t.object);
          break;
        case TupleKind::kQueryInsert:
          window.inserts.push_back(t.query);
          break;
        case TupleKind::kQueryDelete:
          window.deletes.push_back(t.query);
          break;
      }
    }
  }

  // Decide + copy phase under the writer lock and every worker's Gi2 lock:
  // dispatchers keep routing objects against the previous epoch, workers
  // stall briefly (the paper models exactly this migration stall). The new
  // table is then built off-thread and installed with one atomic swap.
  LiveMigrationExecutor exec(*this);
  TouchTrackingExecutor tracked(exec);
  const bool published = router_.Mutate([&](GridtIndex& m) {
    // Migration barrier, part 1: the writer lock (held here) blocks new
    // query updates from routing; wait until the ones already routed are
    // enqueued and applied, so the copy phase sees every query.
    while (update_pushes_.load() != 0) std::this_thread::yield();
    for (const auto& ws : workers_) {
      while (ws->query_items_applied.load() !=
             ws->query_items_enqueued.load()) {
        std::this_thread::yield();
      }
    }
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(workers_.size());
    for (const auto& ws : workers_) locks.emplace_back(ws->mu);
    controller_->Check(cluster_, loads, window, tracked);
    // Journal the installed migrations before the writer lock is released:
    // a concurrent checkpoint (which rotates the WAL, then copies the plan
    // under this same lock) then either sees the new routes in its plan
    // copy or finds these records in its WAL segment — never neither. The
    // records are absolute resulting routes, so replaying them onto an
    // already-migrated plan is idempotent.
    if (exec.changed() && options_.wal != nullptr) {
      options_.wal->AppendCellRoutes(tracked.touched_cells(), m.plan(),
                                     cluster_.vocab());
    }
    return exec.changed();
  });
  // Advisory global evaluation runs outside the critical section: it
  // builds a whole candidate plan, far too slow to hold the routing writer
  // lock and worker locks for. It reads only the plan (mutated solely by
  // this thread) and the window copy.
  controller_->MaybeEvaluateGlobal(cluster_, window);
  if (!published) return;
  migrations_installed_.fetch_add(1, std::memory_order_relaxed);

  // Migration barrier, part 2: wait until no dispatcher is still routing
  // an object against an older epoch, so every old-epoch delivery is in a
  // worker queue before the drain markers go in behind them.
  const uint64_t version = router_.CurrentVersion();
  for (const auto& ds : dispatchers_) {
    // seq_cst load: the other half of the dispatchers' epoch handshake.
    while (ds->routing_epoch.load() < version) {
      std::this_thread::yield();
    }
  }

  // Grace period: wait for everything routed against the old epoch to
  // drain, then remove the stale source copies.
  exec.FinishRemovals();

  // Start a fresh load-accounting window, as after a paper migration.
  // Subtract the counts this check observed rather than zeroing: the worker
  // threads kept incrementing concurrently and those increments belong to
  // the new window.
  for (size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->objects.fetch_sub(tallies[w].objects,
                                   std::memory_order_relaxed);
    workers_[w]->inserts.fetch_sub(tallies[w].inserts,
                                   std::memory_order_relaxed);
    workers_[w]->deletes.fetch_sub(tallies[w].deletes,
                                   std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    cluster_.worker(static_cast<WorkerId>(w)).ResetObjectCounters();
  }
  last_check_tuples_ = 0;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

RunReport ThreadedEngine::AssembleReport() {
  RunReport report;
  report.wall_seconds = wall_seconds_;
  wall_seconds_ = 0.0;
  report.objects = submitted_objects_;
  report.inserts = submitted_inserts_;
  report.deletes = submitted_deletes_;
  report.tuples_processed =
      submitted_objects_ + submitted_inserts_ + submitted_deletes_;
  report.throughput_tps = report.wall_seconds > 0
                              ? report.tuples_processed / report.wall_seconds
                              : 0.0;
  report.matches_delivered = cluster_.merger().delivered();
  report.duplicates_suppressed = cluster_.merger().duplicates();
  for (const auto& ws : workers_) {
    report.matches_emitted +=
        ws->matches_emitted.load(std::memory_order_relaxed);
  }
  for (const auto& ds : dispatchers_) report.dispatch.Merge(ds->stats);
  report.objects_discarded = report.dispatch.objects_discarded;
  for (size_t w = 0; w < workers_.size(); ++w) {
    report.latency.Merge(workers_[w]->latency);
    report.per_worker_tuples.push_back(workers_[w]->tuples);
    report.worker_memory_bytes.push_back(
        cluster_.WorkerMemoryBytes(static_cast<WorkerId>(w)));
  }
  report.dispatcher_memory_bytes = cluster_.DispatcherMemoryBytes();
  if (controller_ != nullptr) {
    const LoadController::Totals& t = controller_->totals();
    report.adjustments = t.adjustments;
    report.cells_migrated = t.cells_moved;
    report.queries_migrated = t.queries_moved;
    report.bytes_migrated = t.bytes_moved;
  }
  report.routing_epochs = router_.version();
  return report;
}

RunReport RunThreaded(Cluster& cluster, const std::vector<StreamTuple>& input,
                      const EngineOptions& options) {
  ThreadedEngine engine(cluster, options);
  return engine.Run(input);
}

}  // namespace ps2
