#include "runtime/threaded_engine.h"

#include <algorithm>
#include <functional>

#include "adjust/touch_tracking_executor.h"
#include "api/delivery_sink.h"
#include "common/stopwatch.h"
#include "persist/wal.h"
#include "runtime/spsc_ring.h"

namespace ps2 {

// ---------------------------------------------------------------------------
// Internal types
// ---------------------------------------------------------------------------

struct ThreadedEngine::Latch {
  explicit Latch(size_t n) : count(n) {}
  std::mutex mu;
  std::condition_variable cv;
  size_t count;

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu);
    if (count > 0 && --count == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return count == 0; });
  }
};

// Work item delivered to a worker thread through one of its data rings.
struct ThreadedEngine::WorkItem {
  StreamTuple tuple;
  std::vector<CellId> cells;  // for query updates
  int64_t enqueue_us = 0;
  // Publish timestamp stamped at Submit(); session delivery latency is
  // measured from here (enqueue_us only covers the worker-ring dwell).
  int64_t submit_us = 0;
  // Objects only: the target worker's query_items_enqueued count read just
  // before the push. The worker must not match this object until it has
  // applied that many updates — data rings from different dispatchers
  // would otherwise reorder an object ahead of an update submitted before
  // it.
  uint64_t updates_before = 0;
};

// Input-ring element: the tuple plus its update-ordering gate stamp.
struct ThreadedEngine::SeqTuple {
  StreamTuple tuple;
  uint64_t updates_before = 0;
  int64_t submit_us = 0;
};

struct ThreadedEngine::WorkerState {
  std::mutex mu;  // guards this worker's Gi2 (worker thread vs controller)
  // Parked-worker wakeup, shared by every ring this worker drains.
  EventCount ready;
  // One SPSC data ring per dispatcher, plus a control ring the controller
  // pushes drain markers through.
  std::vector<std::unique_ptr<SpscRing<WorkItem>>> rings;
  std::unique_ptr<SpscRing<std::shared_ptr<Latch>>> control;
  std::atomic<uint64_t> objects{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> deletes{0};
  // Matches produced by this worker's Gi2, pre-dedup (duplicates across
  // workers still included); exported as RunReport::matches_emitted.
  std::atomic<uint64_t> matches_emitted{0};
  // Query-update flow accounting for the migration barrier and the
  // per-worker object stamps: enqueued counts updates whose ring push
  // completed, applied counts updates this worker's Gi2 absorbed.
  std::atomic<uint64_t> query_items_enqueued{0};
  std::atomic<uint64_t> query_items_applied{0};
  // Object flow accounting for Quiesce(): enqueued counts object items
  // whose ring push completed; done counts items this worker fully
  // processed *including* the delivery-sink handoff, so done == enqueued
  // means every pre-barrier match has left the engine.
  std::atomic<uint64_t> object_items_enqueued{0};
  std::atomic<uint64_t> object_items_done{0};
  uint64_t tuples = 0;        // worker-thread local, read after join
  uint64_t dedup_fresh = 0;   // matches this worker delivered (post-dedup)
  uint64_t dedup_kills = 0;   // duplicates the dedup window suppressed
  uint64_t wait_spins = 0;    // flushed from the WaitContext at loop exit
  uint64_t wait_parks = 0;
  LatencyHistogram latency;   // worker-thread local, read after join
};

struct ThreadedEngine::DispatcherState {
  int index = 0;        // which per-worker data ring this dispatcher feeds
  DispatchStats stats;  // thread-local; merged into the report on Stop
  std::vector<WorkerId> scratch;

  // Tuples this dispatcher finished routing (incremented after every
  // worker-ring push for the tuple completed); paired with the submit
  // side's per-dispatcher push counter by Quiesce().
  std::atomic<uint64_t> tuples_routed{0};

  // This dispatcher's input ring and its parked-consumer wakeup.
  EventCount ready;
  std::unique_ptr<SpscRing<SeqTuple>> input;
  uint64_t wait_spins = 0;  // flushed from the WaitContexts at loop exit
  uint64_t wait_parks = 0;

  // Version of the epoch this dispatcher is currently routing an object
  // against; UINT64_MAX when between objects. Stamped *before* the snapshot
  // is pinned, so the pinned snapshot's version is always >= the stamp —
  // the controller waits until every dispatcher's stamp reaches the new
  // epoch before it pushes drain markers, which guarantees that every
  // delivery derived from an older epoch is already in a worker ring.
  std::atomic<uint64_t> routing_epoch{UINT64_MAX};

  // Pinned snapshot, re-pinned only when the published version moves past
  // it — the steady-state object path pays one integer atomic load, not a
  // shared_ptr atomic load (which libstdc++ backs with a spinlock pool).
  std::shared_ptr<const RoutingSnapshot> snapshot;

  // Recent-tuple ring for the controller's Phase-I term statistics. The
  // mutex is dispatcher-local, so it is uncontended except while the
  // controller snapshots the window.
  std::mutex window_mu;
  std::deque<StreamTuple> window;
  size_t window_capacity = 0;

  void RecordWindow(const StreamTuple& t) {
    std::lock_guard<std::mutex> lock(window_mu);
    window.push_back(t);
    if (window.size() > window_capacity) window.pop_front();
  }
};

// ---------------------------------------------------------------------------
// Live migration executor: copy -> publish -> drain -> remove
// ---------------------------------------------------------------------------

// Runs inside ControllerCheck with the writer lock and every worker's Gi2
// lock held. Each movement installs query *copies* at the destination and
// rewrites the master routing; removal of the stale source copies is
// deferred until the pre-swap ring contents have drained (FinishRemovals),
// so an object routed against the old epoch still finds its queries.
class ThreadedEngine::LiveMigrationExecutor : public MigrationExecutor {
 public:
  explicit LiveMigrationExecutor(ThreadedEngine& engine) : engine_(engine) {}

  MigrationStats MigrateCell(CellId cell, WorkerId from,
                             WorkerId to) override {
    MigrationStats stats;
    if (from == to) return stats;
    Cluster& c = engine_.cluster_;
    Gi2Index& src = c.worker(from);
    stats.bytes = src.CellMigrationBytes(cell);
    std::vector<STSQuery> queries = src.CellQueries(cell);
    stats.queries_moved = queries.size();
    const std::vector<CellId> cells{cell};
    for (const auto& q : queries) c.worker(to).InsertIntoCells(q, cells);
    c.router().RemapCellWorker(cell, from, to);
    removals_.push_back({from, [cell](Gi2Index& g) { g.ExtractCell(cell); }});
    changed_ = true;
    return stats;
  }

  MigrationStats TextSplitCell(
      CellId cell, WorkerId keep, WorkerId to,
      const std::unordered_map<TermId, WorkerId>& term_map) override {
    MigrationStats stats;
    Cluster& c = engine_.cluster_;
    GridtIndex& index = c.router();
    std::vector<STSQuery> queries = c.worker(keep).CellQueries(cell);
    index.SetCellTextRoute(cell, term_map, {keep, to});
    std::shared_ptr<const TermRouter> router = index.plan().cells[cell].text;
    const std::vector<CellId> cells{cell};
    for (const auto& q : queries) {
      bool to_other = false;
      for (const TermId t : q.expr.RoutingTerms(c.vocab())) {
        index.AddH2(cell, t, router->Route(t));
        if (router->Route(t) != keep) to_other = true;
      }
      if (to_other) {
        c.worker(to).InsertIntoCells(q, cells);
        stats.queries_moved++;
        stats.bytes += q.MemoryBytes();
      }
    }
    const Vocabulary* vocab = &c.vocab();
    removals_.push_back(
        {keep, [cell, keep, router, vocab](Gi2Index& g) {
           // Drop the half that moved: re-index only queries with a term
           // still routed to `keep`.
           const std::vector<CellId> cs{cell};
           for (const auto& q : g.ExtractCell(cell)) {
             for (const TermId t : q.expr.RoutingTerms(*vocab)) {
               if (router->Route(t) == keep) {
                 g.InsertIntoCells(q, cs);
                 break;
               }
             }
           }
         }});
    changed_ = true;
    return stats;
  }

  MigrationStats MergeCellTo(CellId cell, WorkerId to) override {
    MigrationStats stats;
    Cluster& c = engine_.cluster_;
    const CellRoute& route = c.router().plan().cells[cell];
    std::vector<WorkerId> sources;
    if (route.IsText()) {
      sources = route.text->workers();
    } else {
      sources.push_back(route.worker);
    }
    const std::vector<CellId> cells{cell};
    for (const WorkerId w : sources) {
      if (w == to) continue;
      Gi2Index& src = c.worker(w);
      stats.bytes += src.CellMigrationBytes(cell);
      for (const auto& q : src.CellQueries(cell)) {
        c.worker(to).InsertIntoCells(q, cells);
        stats.queries_moved++;
      }
      removals_.push_back({w, [cell](Gi2Index& g) { g.ExtractCell(cell); }});
    }
    c.router().SetCellSpaceRoute(cell, to);
    changed_ = true;
    return stats;
  }

  bool changed() const { return changed_; }

  // Called after the new epoch is live and all locks are released.
  void FinishRemovals() {
    if (removals_.empty()) return;
    std::vector<WorkerId> affected;
    for (const auto& r : removals_) affected.push_back(r.worker);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    auto latch = std::make_shared<Latch>(affected.size());
    WaitContext push_wait(WaitStrategy::kBlocking);
    for (const WorkerId w : affected) {
      std::shared_ptr<Latch> marker = latch;
      // A closed ring means the engine is tearing down: its workers have
      // already drained, so the grace period is over by definition.
      if (!engine_.workers_[w]->control->Push(std::move(marker),
                                              push_wait)) {
        latch->CountDown();
      }
    }
    latch->Wait();
    for (const auto& r : removals_) {
      std::lock_guard<std::mutex> lock(engine_.workers_[r.worker]->mu);
      r.fn(engine_.cluster_.worker(r.worker));
    }
    removals_.clear();
  }

 private:
  struct Removal {
    WorkerId worker;
    std::function<void(Gi2Index&)> fn;
  };

  ThreadedEngine& engine_;
  std::vector<Removal> removals_;
  bool changed_ = false;
};

// ---------------------------------------------------------------------------
// Engine lifecycle
// ---------------------------------------------------------------------------

ThreadedEngine::ThreadedEngine(Cluster& cluster, EngineOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      router_(&cluster.router()) {}

ThreadedEngine::~ThreadedEngine() {
  if (running_) Stop();
}

void ThreadedEngine::Start() {
  if (running_) return;
  const int num_workers = cluster_.num_workers();
  const int num_dispatchers = std::max(1, options_.num_dispatchers);
  // Per-dispatcher data rings split the configured capacity, so a worker's
  // total buffered backlog stays at queue_capacity regardless of the
  // dispatcher count.
  const size_t per_ring = std::max<size_t>(
      64, options_.queue_capacity / static_cast<size_t>(num_dispatchers));

  workers_.clear();
  dispatchers_.clear();
  for (int w = 0; w < num_workers; ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->rings.reserve(num_dispatchers);
    for (int d = 0; d < num_dispatchers; ++d) {
      ws->rings.push_back(
          std::make_unique<SpscRing<WorkItem>>(per_ring, &ws->ready));
    }
    ws->control = std::make_unique<SpscRing<std::shared_ptr<Latch>>>(
        64, &ws->ready);
    workers_.push_back(std::move(ws));
  }
  for (int d = 0; d < num_dispatchers; ++d) {
    auto ds = std::make_unique<DispatcherState>();
    ds->index = d;
    ds->input = std::make_unique<SpscRing<SeqTuple>>(
        std::max<size_t>(64, options_.queue_capacity), &ds->ready);
    ds->window_capacity =
        options_.window_capacity / static_cast<size_t>(num_dispatchers) + 1;
    dispatchers_.push_back(std::move(ds));
  }
  controller_ = std::make_unique<LoadController>(options_.controller.config);
  dedup_ = std::make_unique<ShardedDedupWindow>();

  // Starting the engine opens a fresh load-accounting window: the threaded
  // runtime tracks load in per-worker atomics, and stale synchronous
  // tallies would otherwise masquerade as live loads (e.g. in the
  // adjuster's post-migration balance estimate).
  cluster_.ResetLoadWindow();

  updates_submitted_.store(0);
  updates_published_.store(0);
  migrations_installed_.store(0, std::memory_order_relaxed);
  audit_mismatches_.store(0, std::memory_order_relaxed);
  submitted_objects_ = submitted_inserts_ = submitted_deletes_ = 0;
  submit_pushed_.assign(static_cast<size_t>(num_dispatchers), 0);
  submit_rr_ = 0;
  submit_wait_ = WaitContext(options_.wait_strategy);
  last_check_tuples_ = 0;
  collected_.clear();
  ctl_stop_ = false;
  discard_.store(false, std::memory_order_relaxed);
  start_us_ = NowMicros();
  running_ = true;

  for (int w = 0; w < num_workers; ++w) {
    worker_threads_.emplace_back(&ThreadedEngine::WorkerLoop, this, w);
  }
  for (int d = 0; d < num_dispatchers; ++d) {
    dispatcher_threads_.emplace_back(&ThreadedEngine::DispatchLoop, this,
                                     std::ref(*dispatchers_[d]));
  }
  if (options_.controller.enabled) {
    controller_thread_ = std::thread(&ThreadedEngine::ControllerLoop, this);
  }
}

bool ThreadedEngine::Submit(const StreamTuple& tuple, int64_t publish_us) {
  if (!running_) return false;
  SeqTuple st;
  st.tuple = tuple;
  st.submit_us = publish_us != 0 ? publish_us : NowMicros();
  if (tuple.kind == TupleKind::kObject) {
    st.updates_before = updates_submitted_.load(std::memory_order_relaxed);
    ++submitted_objects_;
  } else {
    st.updates_before =
        updates_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (tuple.kind == TupleKind::kQueryInsert) {
      ++submitted_inserts_;
    } else {
      ++submitted_deletes_;
    }
  }
  // Objects round-robin across the per-dispatcher input rings; query
  // updates all flow through dispatcher 0. Pinning the control plane to one
  // dispatcher keeps updates FIFO end-to-end: the ordering gate never spins
  // for an update (everything it waits on is ahead of it in the same ring),
  // and two updates for the same query land in the same per-worker ring, so
  // the worker applies them in submit order. Striping updates instead would
  // serialize them through a cross-dispatcher ping-pong on the gate — and
  // let a same-query insert/delete pair race through different rings.
  if (tuple.kind != TupleKind::kObject) {
    const bool ok = dispatchers_[0]->input->Push(std::move(st), submit_wait_);
    if (ok) ++submit_pushed_[0];
    return ok;
  }
  const size_t d = submit_rr_;
  DispatcherState& ds = *dispatchers_[d];
  if (++submit_rr_ == dispatchers_.size()) submit_rr_ = 0;
  const bool ok = ds.input->Push(std::move(st), submit_wait_);
  if (ok) ++submit_pushed_[d];
  return ok;
}

void ThreadedEngine::Quiesce() {
  if (!running_) return;
  // Stage 1: every submitted tuple has been routed. tuples_routed is
  // incremented after the last worker-ring push for the tuple (and after
  // the per-worker enqueued counters moved), so once it catches up with
  // the submit-side counter, every downstream enqueue is visible.
  for (size_t d = 0; d < dispatchers_.size(); ++d) {
    while (dispatchers_[d]->tuples_routed.load(std::memory_order_acquire) <
           submit_pushed_[d]) {
      std::this_thread::yield();
    }
  }
  // Stage 2: every enqueued item has been fully processed. For objects,
  // "done" includes the DeliverBatch handoff to the sink, so in-process
  // deliveries are in their sessions and fabric deliveries are on the
  // transport when this returns.
  for (const auto& ws : workers_) {
    while (ws->query_items_applied.load(std::memory_order_acquire) !=
               ws->query_items_enqueued.load(std::memory_order_acquire) ||
           ws->object_items_done.load(std::memory_order_acquire) !=
               ws->object_items_enqueued.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

void ThreadedEngine::JoinAll() {
  if (controller_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ctl_mu_);
      ctl_stop_ = true;
    }
    ctl_cv_.notify_all();
    controller_thread_.join();
  }
  for (auto& ds : dispatchers_) ds->input->Close();
  for (auto& t : dispatcher_threads_) t.join();
  dispatcher_threads_.clear();
  for (auto& ws : workers_) {
    for (auto& ring : ws->rings) ring->Close();
    ws->control->Close();
  }
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
}

RunReport ThreadedEngine::Stop() {
  if (!running_) return RunReport{};
  JoinAll();
  wall_seconds_ = static_cast<double>(NowMicros() - start_us_) / 1e6;
  running_ = false;
  return AssembleReport();
}

void ThreadedEngine::Abort() {
  if (!running_) return;
  // From here on dispatchers and workers drop what they pop: the rings
  // still drain (so joins cannot hang on a full ring's backpressure), but
  // nothing is processed — queued tuples die as they would in a crash.
  discard_.store(true, std::memory_order_release);
  JoinAll();
  running_ = false;
  discard_.store(false, std::memory_order_release);
}

RunReport ThreadedEngine::Run(const std::vector<StreamTuple>& input) {
  Start();
  for (size_t i = 0; i < input.size(); ++i) {
    if (options_.input_rate_tps > 0.0) {
      // Pace the stream: tuple i is due at i / rate seconds.
      const int64_t due_us =
          start_us_ + static_cast<int64_t>(1e6 * i / options_.input_rate_tps);
      while (NowMicros() < due_us) {
        std::this_thread::yield();
      }
    }
    Submit(input[i]);
  }
  return Stop();
}

void ThreadedEngine::DataPlaneFill(uint64_t* pending,
                                   uint64_t* capacity) const {
  uint64_t p = 0, c = 0;
  if (running_) {
    for (const auto& w : workers_) {
      for (const auto& ring : w->rings) {
        p += ring->pending();
        c += ring->capacity();
      }
    }
  }
  *pending = p;
  *capacity = c;
}

std::vector<MatchResult> ThreadedEngine::TakeMatches() {
  std::vector<MatchResult> out;
  TakeMatches(&out);
  return out;
}

void ThreadedEngine::TakeMatches(std::vector<MatchResult>* out) {
  out->clear();
  std::lock_guard<std::mutex> lock(merge_mu_);
  // Swap rather than copy: the caller's (cleared) buffer becomes the new
  // collection target, so a consumer draining in a loop ping-pongs two
  // warmed buffers instead of reallocating per drain.
  collected_.swap(*out);
}

// ---------------------------------------------------------------------------
// Dispatcher threads
// ---------------------------------------------------------------------------

void ThreadedEngine::DispatchLoop(DispatcherState& ds) {
  std::vector<SeqTuple> batch;  // reused across drains
  WaitContext pop_wait(options_.wait_strategy);
  WaitContext push_wait(options_.wait_strategy);
  while (true) {
    batch.clear();
    if (ds.input->PopBatch(options_.batch_size, &batch) == 0) {
      if (ds.input->closed_and_drained()) break;
      pop_wait.Await(ds.ready, [&ds] {
        return !ds.input->Empty() || ds.input->closed();
      });
      continue;
    }
    for (SeqTuple& st : batch) RouteOne(ds, st, push_wait);
  }
  ds.wait_spins = pop_wait.spins() + push_wait.spins();
  ds.wait_parks = pop_wait.parks() + push_wait.parks();
}

void ThreadedEngine::RouteOne(DispatcherState& ds, SeqTuple& st,
                              WaitContext& push_wait) {
  const StreamTuple& tuple = st.tuple;
  // Update-ordering gate: all query updates submitted before this tuple
  // must be enqueued at their workers and published. Updates are a small
  // fraction of the stream, so this spin is almost always a single load.
  while (updates_published_.load(std::memory_order_acquire) <
         st.updates_before) {
    std::this_thread::yield();
  }
  if (discard_.load(std::memory_order_acquire)) {
    // Aborting: drop the tuple, but keep the update-ordering gate moving so
    // dispatchers spinning on it still drain.
    if (tuple.kind != TupleKind::kObject) {
      updates_published_.fetch_add(1, std::memory_order_release);
    }
    ds.tuples_routed.fetch_add(1, std::memory_order_release);
    return;
  }
  const int64_t now = NowMicros();
  if (tuple.kind == TupleKind::kObject) {
    // Epoch handshake with the controller (Dekker pattern — the seq_cst
    // ordering is load-bearing). First announce "routing, epoch unknown"
    // (0), *then* read the version: if the controller's barrier scan saw
    // our idle/newer stamp, this read is ordered after its version store
    // and must observe the new epoch; otherwise the controller sees the 0
    // (or a stale stamp) and waits for us. A plain stamp-after-read could
    // let both sides miss each other through the store buffer, and a
    // delivery routed against the dead epoch could be enqueued behind the
    // drain markers.
    ds.routing_epoch.store(0);
    const uint64_t version = router_.CurrentVersion();
    ds.routing_epoch.store(version, std::memory_order_release);
    if (ds.snapshot == nullptr || ds.snapshot->version < version) {
      ds.snapshot = router_.Current();
    }
    ds.snapshot->RouteObject(tuple.object, &ds.scratch);
    if (ds.scratch.empty()) {
      ++ds.stats.objects_discarded;
    } else {
      ++ds.stats.objects_routed;
      ds.stats.object_deliveries += ds.scratch.size();
      for (const WorkerId w : ds.scratch) {
        WorkItem item;
        item.tuple = tuple;
        item.enqueue_us = now;
        item.submit_us = st.submit_us;
        // Per-worker stamp: how many updates had completed their push to
        // this worker when this object was pushed. The worker defers the
        // object until it has applied that many — every update counted
        // here is already in one of its rings (push before increment), so
        // the deferral always resolves.
        item.updates_before =
            workers_[w]->query_items_enqueued.load(std::memory_order_acquire);
        if (workers_[w]->rings[ds.index]->Push(std::move(item), push_wait)) {
          workers_[w]->object_items_enqueued.fetch_add(
              1, std::memory_order_release);
        }
      }
    }
    ds.routing_epoch.store(UINT64_MAX, std::memory_order_release);
  } else {
    auto routes = tuple.kind == TupleKind::kQueryInsert
                      ? router_.RouteInsert(tuple.query, &update_pushes_)
                      : router_.RouteDelete(tuple.query, &update_pushes_);
    if (tuple.kind == TupleKind::kQueryInsert) {
      ++ds.stats.inserts_routed;
    } else {
      ++ds.stats.deletes_routed;
    }
    for (auto& r : routes) {
      ++ds.stats.query_deliveries;
      WorkItem item;
      item.tuple = tuple;
      item.cells = std::move(r.cells);
      item.enqueue_us = now;
      // Increment *after* the push completes: an object stamped with this
      // count must find the update already in a ring, and the migration
      // barrier (enqueued == applied) must not run ahead of a push still
      // parked on a full ring.
      if (workers_[r.worker]->rings[ds.index]->Push(std::move(item),
                                                    push_wait)) {
        workers_[r.worker]->query_items_enqueued.fetch_add(
            1, std::memory_order_release);
      }
    }
    update_pushes_.fetch_sub(1);
    updates_published_.fetch_add(1, std::memory_order_release);
  }
  ds.tuples_routed.fetch_add(1, std::memory_order_release);
  if (options_.controller.enabled) ds.RecordWindow(tuple);
}

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

void ThreadedEngine::WorkerLoop(int w) {
  WorkerState& ws = *workers_[w];
  Gi2Index& gi2 = cluster_.worker(w);
  DeliverySink* delivery = options_.delivery;
  const size_t nsrc = ws.rings.size();

  // Per-ring staging: the popped batch plus a cursor. Items are consumed
  // front-to-back (ring FIFO order); a stalled object stays at the cursor
  // while the other rings make progress.
  struct Source {
    std::vector<WorkItem> buf;
    size_t cur = 0;
    size_t left() const { return buf.size() - cur; }
  };
  std::vector<Source> sources(nsrc);

  // Drain markers in flight: each captured, at receipt, how many data
  // items were pending per ring; it acknowledges once those exact items
  // (per-ring FIFO makes them identifiable by count) are consumed. A
  // global count would not do — consuming *newer* items from an already-
  // drained ring must not stand in for older items still queued elsewhere.
  struct PendingMarker {
    std::shared_ptr<Latch> latch;
    std::vector<size_t> targets;
    size_t total = 0;
  };
  std::vector<PendingMarker> pending_markers;
  std::vector<std::shared_ptr<Latch>> ctl_buf;

  // All reused across drains: the object-run pointer list, the match and
  // delivery buffers keep their capacity, so the steady-state object path
  // performs no heap allocation in this loop.
  std::vector<const SpatioTextualObject*> run;
  std::vector<MatchResult> matches;
  std::vector<Delivery> pending;
  WaitContext wait(options_.wait_strategy);

  const auto consumed_from = [&](size_t s, size_t n) {
    for (size_t p = 0; p < pending_markers.size();) {
      PendingMarker& pm = pending_markers[p];
      const size_t dec = std::min(pm.targets[s], n);
      pm.targets[s] -= dec;
      pm.total -= dec;
      if (pm.total == 0) {
        pm.latch->CountDown();
        pending_markers.erase(pending_markers.begin() +
                              static_cast<ptrdiff_t>(p));
      } else {
        ++p;
      }
    }
  };

  // Dedup verdict for one match: the delivery router's sharded window when
  // one is wired, the engine-local fallback otherwise.
  const auto accept_fresh = [&](const MatchResult& m) {
    return delivery != nullptr
               ? delivery->AcceptFresh(m.query_id, m.object_id)
               : dedup_->AcceptFresh(m.query_id, m.object_id);
  };

  // Processes staged items of source `s` until it runs dry or stalls on an
  // unsatisfied update stamp. Returns the number of items consumed.
  const auto process_source = [&](size_t s) -> size_t {
    Source& sc = sources[s];
    const size_t start = sc.cur;
    while (sc.cur < sc.buf.size()) {
      WorkItem& item = sc.buf[sc.cur];
      if (discard_.load(std::memory_order_acquire)) {
        // Aborting: drop the item, but a query update was counted as
        // enqueued when it was routed — the controller's migration barrier
        // spins on applied == enqueued, and Abort() joins the controller
        // first, so the counter must keep moving or the join deadlocks.
        if (item.tuple.kind != TupleKind::kObject) {
          ws.query_items_applied.fetch_add(1);
        } else {
          ws.object_items_done.fetch_add(1, std::memory_order_release);
        }
        ++sc.cur;
        continue;
      }
      if (item.tuple.kind == TupleKind::kObject) {
        const uint64_t applied =
            ws.query_items_applied.load(std::memory_order_relaxed);
        if (item.updates_before > applied) break;  // stall: sweep others
        // Gather the run of consecutive satisfiable objects and match them
        // as one batch: one Gi2 lock acquisition, one cell-grouped index
        // pass. Runs never cross a query update or an unsatisfied stamp —
        // those are ordering boundaries within this ring.
        run.clear();
        size_t end = sc.cur;
        while (end < sc.buf.size() &&
               sc.buf[end].tuple.kind == TupleKind::kObject &&
               sc.buf[end].updates_before <= applied) {
          run.push_back(&sc.buf[end].tuple.object);
          ++end;
        }
        matches.clear();
        {
          std::lock_guard<std::mutex> lock(ws.mu);
          gi2.MatchBatch(run.data(), run.size(), &matches);
        }
        ws.objects.fetch_add(run.size(), std::memory_order_relaxed);
        ws.matches_emitted.fetch_add(matches.size(),
                                     std::memory_order_relaxed);
        if (!matches.empty()) {
          pending.clear();
          // Resolves a match's publish timestamp from the run items.
          // MatchBatch groups output by cell, so consecutive matches tend
          // to repeat objects: memoize the last hit and scan circularly.
          const size_t i0 = sc.cur;
          size_t probe = i0;
          const auto submit_of = [&](ObjectId id) {
            const size_t n = end - i0;
            for (size_t k = 0; k < n; ++k) {
              const size_t idx = i0 + (probe - i0 + k) % n;
              if (sc.buf[idx].tuple.object.id == id) {
                probe = idx;
                return sc.buf[idx].submit_us;
              }
            }
            return sc.buf[i0].submit_us;  // unreachable: every match's object is in the run
          };
          const auto stage_delivery = [&](const MatchResult& m) {
            if (delivery == nullptr) return;
            Delivery d;
            d.query_id = m.query_id;
            d.object_id = m.object_id;
            d.publish_us = submit_of(m.object_id);
            d.score = m.score;
            d.expire_us = m.expire_us;
            pending.push_back(d);
          };
          if (!options_.merger_audit && !options_.collect_matches) {
            // Hot path: per-shard dedup, no global lock.
            for (const auto& m : matches) {
              if (!accept_fresh(m)) {
                ++ws.dedup_kills;
                continue;
              }
              ++ws.dedup_fresh;
              stage_delivery(m);
            }
          } else {
            // Audit / collection path: serialize so the merger replay sees
            // matches in the same order the dedup window judged them (a
            // cross-worker duplicate would otherwise be charged to
            // different workers by the two filters and miscount as two
            // mismatches).
            std::lock_guard<std::mutex> lock(merge_mu_);
            Merger& merger = cluster_.merger();
            for (const auto& m : matches) {
              const bool is_fresh = accept_fresh(m);
              if (options_.merger_audit &&
                  merger.Accept(m) != is_fresh) {
                audit_mismatches_.fetch_add(1, std::memory_order_relaxed);
              }
              if (!is_fresh) {
                ++ws.dedup_kills;
                continue;
              }
              ++ws.dedup_fresh;
              if (options_.collect_matches) collected_.push_back(m);
              stage_delivery(m);
            }
          }
          // Deliver outside all engine locks: a kBlock session may block
          // this worker on a full queue, and that must stall only this
          // worker.
          if (!pending.empty()) {
            delivery->DeliverBatch(pending.data(), pending.size());
          }
        }
        const int64_t done_us = NowMicros();
        for (size_t k = sc.cur; k < end; ++k) {
          ws.tuples++;
          ws.latency.Record(
              static_cast<double>(done_us - sc.buf[k].enqueue_us));
        }
        // After the sink handoff: Quiesce()'s done == enqueued then implies
        // every pre-barrier match has left the engine.
        ws.object_items_done.fetch_add(end - sc.cur,
                                       std::memory_order_release);
        sc.cur = end;
        continue;
      }
      if (item.tuple.kind == TupleKind::kQueryInsert) {
        {
          std::lock_guard<std::mutex> lock(ws.mu);
          gi2.InsertIntoCells(item.tuple.query, item.cells);
        }
        ws.inserts.fetch_add(1, std::memory_order_relaxed);
      } else {
        {
          std::lock_guard<std::mutex> lock(ws.mu);
          gi2.Delete(item.tuple.query.id);
        }
        ws.deletes.fetch_add(1, std::memory_order_relaxed);
      }
      ws.query_items_applied.fetch_add(1);
      ws.tuples++;
      ws.latency.Record(static_cast<double>(NowMicros() - item.enqueue_us));
      ++sc.cur;
    }
    const size_t consumed = sc.cur - start;
    if (consumed > 0 && !pending_markers.empty()) {
      consumed_from(s, consumed);
    }
    return consumed;
  };

  while (true) {
    bool progress = false;
    // Control ring first: a drain marker captures the currently pending
    // data counts, so handling it before the data sweep keeps the captured
    // window tight.
    ctl_buf.clear();
    if (ws.control->PopBatch(8, &ctl_buf) > 0) {
      progress = true;
      for (auto& latch : ctl_buf) {
        PendingMarker pm;
        pm.latch = std::move(latch);
        pm.targets.resize(nsrc);
        for (size_t s = 0; s < nsrc; ++s) {
          pm.targets[s] = sources[s].left() + ws.rings[s]->pending();
          pm.total += pm.targets[s];
        }
        if (pm.total == 0) {
          pm.latch->CountDown();
        } else {
          pending_markers.push_back(std::move(pm));
        }
      }
    }
    for (size_t s = 0; s < nsrc; ++s) {
      Source& sc = sources[s];
      if (sc.cur == sc.buf.size()) {
        sc.buf.clear();
        sc.cur = 0;
        if (ws.rings[s]->PopBatch(options_.batch_size, &sc.buf) == 0) {
          continue;
        }
      }
      if (process_source(s) > 0) progress = true;
    }
    if (progress) continue;
    bool buffered = false;
    for (const auto& sc : sources) {
      if (sc.left() > 0) buffered = true;
    }
    if (buffered) {
      // Every staged head is an object stalled on an update stamp. The
      // pending update is in one of this worker's rings (pushes complete
      // before they are counted), so the next sweep will reach it; yield
      // rather than park so its arrival in a pop is not missed.
      std::this_thread::yield();
      continue;
    }
    // Nothing staged, nothing popped: exit once every ring is closed and
    // drained, otherwise park until a producer pushes or closes.
    bool all_done = ws.control->closed_and_drained();
    for (size_t s = 0; all_done && s < nsrc; ++s) {
      if (!ws.rings[s]->closed_and_drained()) all_done = false;
    }
    if (all_done) break;
    wait.Await(ws.ready, [&] {
      if (!ws.control->Empty() || ws.control->closed()) return true;
      for (size_t s = 0; s < nsrc; ++s) {
        if (!ws.rings[s]->Empty() || ws.rings[s]->closed()) return true;
      }
      return false;
    });
  }
  // Defensive: a marker whose remaining targets died with discarded items
  // must still acknowledge, or Abort() could wedge a waiting controller.
  for (auto& pm : pending_markers) pm.latch->CountDown();
  ws.wait_spins = wait.spins();
  ws.wait_parks = wait.parks();
}

// ---------------------------------------------------------------------------
// Controller thread
// ---------------------------------------------------------------------------

void ThreadedEngine::ControllerLoop() {
  std::unique_lock<std::mutex> lock(ctl_mu_);
  while (!ctl_stop_) {
    ctl_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.controller.interval_ms));
    if (ctl_stop_) break;
    lock.unlock();
    ControllerCheck();
    lock.lock();
  }
}

void ThreadedEngine::ControllerCheck() {
  const auto& ctl = options_.controller;
  const CostModel& cm = ctl.config.adjust.cost;

  // Live per-worker tallies -> Definition-1 loads.
  uint64_t total_tuples = 0;
  std::vector<double> loads;
  std::vector<WorkerLoadTally> tallies;
  loads.reserve(workers_.size());
  tallies.reserve(workers_.size());
  for (const auto& ws : workers_) {
    WorkerLoadTally t;
    t.objects = ws->objects.load(std::memory_order_relaxed);
    t.inserts = ws->inserts.load(std::memory_order_relaxed);
    t.deletes = ws->deletes.load(std::memory_order_relaxed);
    total_tuples += t.objects + t.inserts + t.deletes;
    loads.push_back(WorkerLoad(cm, t));
    tallies.push_back(t);
  }
  if (total_tuples - last_check_tuples_ < ctl.min_tuples) return;
  last_check_tuples_ = total_tuples;
  if (BalanceFactor(loads) <= ctl.config.adjust.sigma) return;

  // Phase-I statistics from the dispatcher-local windows.
  WorkloadSample window;
  for (const auto& ds : dispatchers_) {
    std::lock_guard<std::mutex> lock(ds->window_mu);
    for (const StreamTuple& t : ds->window) {
      switch (t.kind) {
        case TupleKind::kObject:
          window.objects.push_back(t.object);
          break;
        case TupleKind::kQueryInsert:
          window.inserts.push_back(t.query);
          break;
        case TupleKind::kQueryDelete:
          window.deletes.push_back(t.query);
          break;
      }
    }
  }

  // Decide + copy phase under the writer lock and every worker's Gi2 lock:
  // dispatchers keep routing objects against the previous epoch, workers
  // stall briefly (the paper models exactly this migration stall). The new
  // table is then built off-thread and installed with one atomic swap.
  LiveMigrationExecutor exec(*this);
  TouchTrackingExecutor tracked(exec);
  const bool published = router_.Mutate([&](GridtIndex& m) {
    // Migration barrier, part 1: the writer lock (held here) blocks new
    // query updates from routing; wait until the ones already routed are
    // enqueued and applied, so the copy phase sees every query.
    while (update_pushes_.load() != 0) std::this_thread::yield();
    for (const auto& ws : workers_) {
      while (ws->query_items_applied.load() !=
             ws->query_items_enqueued.load()) {
        std::this_thread::yield();
      }
    }
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(workers_.size());
    for (const auto& ws : workers_) locks.emplace_back(ws->mu);
    controller_->Check(cluster_, loads, window, tracked);
    // Journal the installed migrations before the writer lock is released:
    // a concurrent checkpoint (which rotates the WAL, then copies the plan
    // under this same lock) then either sees the new routes in its plan
    // copy or finds these records in its WAL segment — never neither. The
    // records are absolute resulting routes, so replaying them onto an
    // already-migrated plan is idempotent.
    if (exec.changed() && options_.wal != nullptr) {
      options_.wal->AppendCellRoutes(tracked.touched_cells(), m.plan(),
                                     cluster_.vocab());
    }
    return exec.changed();
  });
  // Advisory global evaluation runs outside the critical section: it
  // builds a whole candidate plan, far too slow to hold the routing writer
  // lock and worker locks for. It reads only the plan (mutated solely by
  // this thread) and the window copy.
  controller_->MaybeEvaluateGlobal(cluster_, window);
  if (!published) return;
  migrations_installed_.fetch_add(1, std::memory_order_relaxed);

  // Migration barrier, part 2: wait until no dispatcher is still routing
  // an object against an older epoch, so every old-epoch delivery is in a
  // worker ring before the drain markers go in behind them.
  const uint64_t version = router_.CurrentVersion();
  for (const auto& ds : dispatchers_) {
    // seq_cst load: the other half of the dispatchers' epoch handshake.
    while (ds->routing_epoch.load() < version) {
      std::this_thread::yield();
    }
  }

  // Grace period: wait for everything routed against the old epoch to
  // drain, then remove the stale source copies.
  exec.FinishRemovals();

  // Start a fresh load-accounting window, as after a paper migration.
  // Subtract the counts this check observed rather than zeroing: the worker
  // threads kept incrementing concurrently and those increments belong to
  // the new window.
  for (size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->objects.fetch_sub(tallies[w].objects,
                                   std::memory_order_relaxed);
    workers_[w]->inserts.fetch_sub(tallies[w].inserts,
                                   std::memory_order_relaxed);
    workers_[w]->deletes.fetch_sub(tallies[w].deletes,
                                   std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    cluster_.worker(static_cast<WorkerId>(w)).ResetObjectCounters();
  }
  last_check_tuples_ = 0;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

RunReport ThreadedEngine::AssembleReport() {
  RunReport report;
  report.wall_seconds = wall_seconds_;
  wall_seconds_ = 0.0;
  report.objects = submitted_objects_;
  report.inserts = submitted_inserts_;
  report.deletes = submitted_deletes_;
  report.tuples_processed =
      submitted_objects_ + submitted_inserts_ + submitted_deletes_;
  report.throughput_tps = report.wall_seconds > 0
                              ? report.tuples_processed / report.wall_seconds
                              : 0.0;
  report.wait_spins = submit_wait_.spins();
  report.wait_parks = submit_wait_.parks();
  report.audit_mismatches =
      audit_mismatches_.load(std::memory_order_relaxed);
  for (const auto& ws : workers_) {
    report.matches_emitted +=
        ws->matches_emitted.load(std::memory_order_relaxed);
    report.matches_delivered += ws->dedup_fresh;
    report.duplicates_suppressed += ws->dedup_kills;
    report.dedup_kills += ws->dedup_kills;
    report.wait_spins += ws->wait_spins;
    report.wait_parks += ws->wait_parks;
  }
  for (const auto& ds : dispatchers_) {
    report.dispatch.Merge(ds->stats);
    report.wait_spins += ds->wait_spins;
    report.wait_parks += ds->wait_parks;
  }
  report.objects_discarded = report.dispatch.objects_discarded;
  for (size_t w = 0; w < workers_.size(); ++w) {
    report.latency.Merge(workers_[w]->latency);
    report.per_worker_tuples.push_back(workers_[w]->tuples);
    report.worker_memory_bytes.push_back(
        cluster_.WorkerMemoryBytes(static_cast<WorkerId>(w)));
    uint64_t highwater = 0;
    for (const auto& ring : workers_[w]->rings) {
      highwater = std::max(highwater, ring->highwater());
    }
    report.worker_ring_highwater.push_back(highwater);
  }
  report.dispatcher_memory_bytes = cluster_.DispatcherMemoryBytes();
  if (controller_ != nullptr) {
    const LoadController::Totals& t = controller_->totals();
    report.adjustments = t.adjustments;
    report.cells_migrated = t.cells_moved;
    report.queries_migrated = t.queries_moved;
    report.bytes_migrated = t.bytes_moved;
  }
  report.routing_epochs = router_.version();
  return report;
}

RunReport RunThreaded(Cluster& cluster, const std::vector<StreamTuple>& input,
                      const EngineOptions& options) {
  ThreadedEngine engine(cluster, options);
  return engine.Run(input);
}

}  // namespace ps2
