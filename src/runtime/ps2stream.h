#ifndef PS2_RUNTIME_PS2STREAM_H_
#define PS2_RUNTIME_PS2STREAM_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "adjust/load_controller.h"
#include "api/delivery_router.h"
#include "api/quota.h"
#include "api/status.h"
#include "api/subscriber_session.h"
#include "api/subscription.h"
#include "core/workload_stats.h"
#include "persist/durability.h"
#include "runtime/metrics_exporter.h"
#include "runtime/overload.h"
#include "runtime/threaded_engine.h"
#include "shard/sharded_engine.h"
#include "subscribe/spec.h"
#include "subscribe/topk.h"
#include "text/tokenizer.h"

namespace ps2 {

// Top-level facade: the publish/subscribe service a downstream application
// embeds. It owns the vocabulary, builds the partition plan from a bootstrap
// sample (or a uniform default), runs the cluster, and can keep the load
// balanced automatically via local adjustments.
//
//   PS2Stream ps2(PS2StreamOptions{...});
//   ps2.Bootstrap(sample);                        // plan from historic data
//   auto session = ps2.OpenSession({.queue_capacity = 4096});
//   auto sub = ps2.Subscribe(session, "pizza AND downtown", region);
//   if (!sub.ok()) log(sub.status().ToString()); // e.g. expression errors
//   ps2.Post(loc, "best pizza downtown!");
//   Delivery d;
//   while (session->Poll(&d)) consume(d);        // or Take() / a MatchSink
//   // sub goes out of scope -> unsubscribes
//
// Two execution modes, one delivery contract:
//   - synchronous (default): Post processes the tuple inline; matches reach
//     the routed sessions before Post returns. Load adjustment piggy-backs
//     on the caller's thread.
//   - started (Start()/Stop()): a ThreadedEngine runs dispatcher, worker
//     and controller threads; Subscribe/Post submit tuples and return
//     immediately, and matches reach the routed sessions asynchronously
//     from the worker threads (deduplicated through the delivery router's
//     shared window — exactly the synchronous mode's deduped match set).
//     Load adjustment happens online on the controller thread, with
//     migrations installed live.
//
// Sessions & backpressure: a SubscriberSession is a bounded delivery queue
// multiplexing any number of subscriptions, with kBlock / kDropOldest /
// kDropNewest overflow policies and pull (Poll/Take) or push (MatchSink)
// consumption. Subscribing without a session is allowed — matches are then
// only counted (dedup window + RunReport), not delivered.
//
// Durability (options.durability.enabled): subscription mutations are
// journaled to a write-ahead log *before* they take effect, installed
// migrations are journaled by whichever runtime performs them, and
// Bootstrap/Checkpoint() capture the full state (vocabulary, plan, routing
// snapshot, live queries) as an atomic checkpoint. A crashed service is
// stood back up with Restore(), which loads the latest checkpoint, replays
// the WAL tail (truncating a torn final record), rebuilds the per-worker
// GI2 indexes and resumes serving — and logging — where it left off.
struct PS2StreamOptions {
  std::string partitioner = "hybrid";
  PartitionConfig partition;
  ClusterOptions cluster;
  // Automatic local load adjustment (synchronous mode; the started engine
  // uses engine.controller instead).
  bool auto_adjust = false;
  size_t adjust_check_interval = 100000;  // tuples between balance checks
  LocalAdjustConfig adjust;
  size_t window_capacity = 1 << 16;  // recent-tuple window for Phase I
  // Threaded engine configuration used by Start().
  EngineOptions engine;
  // Subscription WAL + checkpoints + crash recovery.
  DurabilityConfig durability;
  // Shard fabric: num_shards > 1 runs N engine shards behind this facade
  // (see shard/sharded_engine.h). The client API, delivery contract and
  // dedup semantics are unchanged at any shard count; partition/cluster/
  // engine/durability options above apply per shard, with durability.dir
  // becoming the fabric root (<dir>/SHARDMAP + <dir>/shard-<i>/).
  ShardFabricOptions sharding;
  // Multi-tenant admission limits (see api/quota.h): subscription-count
  // quotas and per-tenant publish token buckets, enforced in Subscribe/Post
  // with kResourceExhausted. Defaults = unlimited. The tenant comes from
  // SessionOptions::tenant (Subscribe) or the Post(tenant, ...) overloads.
  QuotaConfig quota;
  // Overload admission control (see runtime/overload.h): watermark-based
  // degraded mode over session-queue and worker-ring occupancy, sampled on
  // the publish path. Disabled by default.
  OverloadConfig overload;
};

class PS2Stream : private SubscriptionBackend {
 public:
  using SessionPtr = std::shared_ptr<SubscriberSession>;

  explicit PS2Stream(PS2StreamOptions options = PS2StreamOptions());
  ~PS2Stream() override;

  PS2Stream(const PS2Stream&) = delete;
  PS2Stream& operator=(const PS2Stream&) = delete;

  // Builds the partition plan from a workload sample and starts the
  // cluster. Must be called before any Subscribe/Post. Also folds the
  // sample's term occurrences into the vocabulary frequency profile.
  // With durability enabled this writes the initial checkpoint and opens
  // the WAL; a Bootstrap that cannot persist leaves the service
  // non-durable (check durable()).
  void Bootstrap(const WorkloadSample& sample);

  // --- client API: sessions -------------------------------------------------
  // Creates a delivery session. Sessions are independent of Bootstrap and
  // of the execution mode; close order vs. the facade is free (shared
  // ownership with the delivery router).
  SessionPtr OpenSession(SessionOptions options = SessionOptions());

  // --- client API: subscribe ------------------------------------------------
  // Registers a subscription whose matches are delivered to `session`
  // (nullptr: matches are counted but not delivered). The expression uses
  // the BoolExpr grammar ("a AND (b OR c)").
  // Errors: kInvalidArgument (expression syntax, with the parser's
  // message), kFailedPrecondition (not bootstrapped), kUnavailable (service
  // killed). The returned RAII handle unsubscribes on destruction; call
  // Release() to manage the id manually.
  StatusOr<Subscription> Subscribe(const SessionPtr& session,
                                   const std::string& expression,
                                   const Rect& region);
  // Same, for a pre-built query (the id must be unused: kAlreadyExists).
  // Scored-class queries get the same validation as specs (tau/k bounds).
  StatusOr<Subscription> Subscribe(const SessionPtr& session,
                                   const STSQuery& query);
  // Typed subscription classes (see subscribe/spec.h): boolean,
  // similarity-threshold (score >= tau) and continuous top-k. Malformed
  // specs — tau outside (0, 1], k == 0, an empty term set — are rejected
  // with a field-positional kInvalidArgument, never clamped.
  StatusOr<Subscription> Subscribe(const SessionPtr& session,
                                   const SubscriptionSpec& spec);

  // Moving subscriber: replaces the subscription's region in place, keeping
  // its id, class, terms and session route. The change rides the existing
  // query-update routing — a delete draining the old cells followed by an
  // insert into the new ones, ordered through the update gate (and, in
  // fabric mode, kQueryUpdate wire frames to every owner shard) — so
  // matches for objects posted after UpdateSubscription returns reflect the
  // new region. Held top-k results are not re-validated: a region move
  // affects future candidates only. kNotFound when the id is not live.
  Status UpdateSubscription(QueryId id, const Rect& new_region);

  // Cancels a subscription by id. kNotFound when the id is not live.
  Status Cancel(QueryId id);

  // --- client API: publish --------------------------------------------------
  // Publishes an object; matches flow to the routed sessions in both
  // execution modes (inline here in synchronous mode, from the worker
  // threads in started mode). Errors: kFailedPrecondition (not
  // bootstrapped), kUnavailable (engine stopped mid-submit),
  // kResourceExhausted (the tenant's publish token bucket is empty; the
  // message names the field, "quota.publish_rate_per_sec"). The
  // tenant-less forms publish as the default tenant "".
  Status Post(Point loc, const std::string& text);
  Status Post(const SpatioTextualObject& object);
  Status Post(const std::string& tenant, Point loc, const std::string& text);
  Status Post(const std::string& tenant, const SpatioTextualObject& object);

  // Advances the event-time watermark without publishing (e.g. a quiet
  // stream whose held top-k results should still expire). Posting an object
  // advances it implicitly to the object's timestamp. Monotonic; stale
  // values no-op. Expiring a held top-k result re-admits (and delivers) the
  // best buffered candidate.
  void AdvanceEventTime(int64_t watermark_us);

  // --- durability -----------------------------------------------------------
  // Rebuilds the service from the durable directory (options.durability.dir
  // unless `dir` is given): latest checkpoint + WAL tail replay. Replaces
  // Bootstrap() on restart. Returns false when the directory holds no
  // usable checkpoint; the service is then untouched. On success the
  // service is bootstrapped, all subscriptions are live, and the WAL
  // continues at `dir` (durability is enabled even if the options left it
  // off — calling Restore() is the opt-in). Delivery routes are not
  // persisted: reattach sessions by re-routing ids after Restore().
  bool Restore(const std::string& dir = std::string());

  // Writes a checkpoint now (also called automatically every
  // durability.checkpoint_every WAL records). Works in both modes; in
  // started mode the plan is captured under the routing writer lock, so
  // live migrations never interleave. Returns false when durability is off.
  bool Checkpoint();

  // Statistics of the last Restore() on this instance.
  const RecoveredState* recovered() const { return recovered_.get(); }
  // True while mutations are actually being journaled: the WAL is open and
  // has hit no I/O error. Goes false (sticky) if the log ever fails to
  // write — mutations after that point would not survive a crash.
  bool durable() const {
    if (fabric_ != nullptr) return fabric_->durable();
    return durability_ != nullptr && durability_->healthy();
  }
  // The durability manager (nullptr when durability is off) — exposed for
  // tooling and tests (e.g. forcing a WAL flush before a simulated crash).
  DurabilityManager* durability() { return durability_.get(); }

  // Fleet health, on demand: Ok when every shard answers an acked probe and
  // durability is intact. kDataLoss — a WAL hit its sticky I/O error;
  // kUnavailable — a shard is quarantined (degraded mode) or the service
  // was killed. In single-engine mode this reports the durability gate.
  // Probing is active: an unresponsive shard discovered here walks the
  // same supervisor restart/quarantine path as one discovered by traffic.
  Status Health();

  // Crash simulation (tests and failure drills): tears down the engine
  // without draining, skips every graceful-shutdown step and drops the
  // durability manager without a final flush beyond what the WAL's sync
  // mode already guaranteed. The service is unusable afterwards — stand a
  // new one up with Restore().
  void Kill();

  // --- async engine ---------------------------------------------------------
  // Spawns the threaded engine over the bootstrapped cluster. Requires
  // Bootstrap() first. Subsequent Subscribe/Post calls are submitted to
  // the engine instead of being processed inline.
  void Start();
  // Drains the engine and returns its run report (including the session
  // delivery counters and publish->deliver latency; sessions accumulate
  // over their lifetime, so a report after several Start/Stop cycles — or
  // after synchronous traffic — covers all of it). While the drain runs,
  // kBlock sessions degrade to drop-newest so a stalled consumer cannot
  // wedge shutdown. No-op RunReport when the engine is not running.
  RunReport Stop();
  bool started() const {
    return (engine_ != nullptr && engine_->running()) ||
           (fabric_ != nullptr && fabric_->started());
  }
  ThreadedEngine* engine() { return engine_.get(); }
  // The shard fabric (nullptr when sharding.num_shards <= 1).
  ShardedEngine* fabric() { return fabric_.get(); }

  // --- introspection --------------------------------------------------------
  Vocabulary& vocabulary() { return vocab_; }
  Cluster& cluster() { return *cluster_; }
  const Cluster& cluster() const { return *cluster_; }
  size_t num_subscriptions() const { return subscriptions_.size(); }
  const std::unordered_map<QueryId, STSQuery>& subscriptions() const {
    return subscriptions_;
  }
  // Note: cluster() is only meaningful in single-engine mode; use fabric()
  // for per-shard access when sharding is on.
  bool bootstrapped() const {
    return cluster_ != nullptr ||
           (fabric_ != nullptr && fabric_->bootstrapped());
  }
  const std::vector<AdjustReport>& adjustments() const {
    return adjustments_;
  }
  // The delivery router (always live) and the aggregate session counters —
  // the synchronous-mode counterpart of the RunReport delivery fields.
  DeliveryRouter& delivery() { return *delivery_; }
  SessionStats delivery_stats() const { return delivery_->AggregateStats(); }
  // Continuous top-k admission state (always live; empty without top-k
  // subscriptions). Snapshot(id) is the query's current held set.
  TopKCoordinator& topk() { return topk_; }
  const TopKCoordinator& topk() const { return topk_; }

  // --- admission & metrics --------------------------------------------------
  // Quota bookkeeping (always live; no-op when options.quota is all
  // defaults) and the overload controller's degraded flag.
  const QuotaManager& quota() const { return quota_; }
  bool overloaded() const { return overload_.degraded(); }

  // Point-in-time metrics: the last Stop() report (zeros before the first
  // Stop, or forever in synchronous mode) overlaid with the live
  // thread-safe counters — session deliveries/drops/latency, unrouted,
  // dedup kills, quota/overload counters and the live-subscription gauge.
  // Callable from any thread (the exporter's snapshot callback).
  RunReport MetricsSnapshot() const;
  // Prometheus text rendering of MetricsSnapshot(); includes per-shard
  // {shard="N"} sections once the fabric has produced shard reports.
  std::string MetricsPrometheus() const;
  // Flat JSON rendering of MetricsSnapshot().
  std::string MetricsJson() const;
  // Spawns (or stops) the periodic file exporter over MetricsSnapshot().
  // False when one is already running.
  bool StartMetricsExporter(MetricsExporter::Options exporter_options);
  void StopMetricsExporter();
  MetricsExporter* metrics_exporter() { return exporter_.get(); }

 private:
  // SubscriptionBackend (RAII Subscription handles cancel through this).
  void CancelSubscription(QueryId id) override;

  // Shared subscribe path: WAL-before-apply, delivery routing, engine
  // submit or inline processing. Non-Ok (fabric mode: an owner shard is
  // quarantined) rolls the registration back.
  Status ApplySubscribe(const STSQuery& query, const SessionPtr& session);
  // Shared unsubscribe path (Cancel and the RAII handles funnel here):
  // WAL-before-apply, unroute, engine submit or inline processing.
  Status ApplyUnsubscribe(QueryId id);
  // Shared publish path.
  Status PostInternal(const SpatioTextualObject& object);
  // Samples session-queue and worker-ring fills into the overload
  // controller (called every overload.check_interval posts).
  void SampleOverload();
  // Shared subscription-update path (fabric / WAL / engine-or-inline).
  Status ApplyUpdate(const STSQuery& old_query, const STSQuery& new_query);
  // Watermark advance + promotion delivery (both Post and AdvanceEventTime).
  void AdvanceWatermark(int64_t watermark_us);
  // Mutation gate: kDataLoss once the WAL (any shard's, in fabric mode)
  // has hit its sticky I/O error — the service refuses new mutations
  // rather than accepting ones that would not survive a crash.
  Status DurabilityGate() const;
  void Track(const StreamTuple& tuple);
  void MaybeAutoAdjust();
  void MaybeCheckpoint();
  // Captures the current state (vocab, plan, snapshot, live queries) for a
  // checkpoint committed under `seq`.
  bool CommitCheckpointLocked(uint64_t seq);

  PS2StreamOptions options_;
  Vocabulary vocab_;
  Tokenizer tokenizer_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<LoadController> controller_;
  std::unique_ptr<ThreadedEngine> engine_;
  // Multi-shard mode (sharding.num_shards > 1): the fabric replaces
  // cluster_/engine_/durability_ wholesale; exactly one of the two stacks
  // is ever live.
  std::unique_ptr<ShardedEngine> fabric_;
  std::unique_ptr<DurabilityManager> durability_;
  std::unique_ptr<RecoveredState> recovered_;
  std::unique_ptr<DeliveryRouter> delivery_;
  // Centralized top-k admission, hooked into the router (see
  // subscribe/topk.h for why admission is not per-worker).
  TopKCoordinator topk_;
  QuotaManager quota_;
  OverloadController overload_;
  std::unique_ptr<MetricsExporter> exporter_;
  // Last Stop() report, the base layer of MetricsSnapshot(); guarded so the
  // exporter thread can read it while the control thread stops the engine.
  mutable std::mutex report_mu_;
  RunReport last_report_;
  // Mirror of subscriptions_.size() readable off the control thread.
  std::atomic<uint64_t> live_subscriptions_{0};
  // Liveness token for RAII Subscription handles: reset first in the
  // destructor so a handle outliving the facade cancels into a no-op.
  std::shared_ptr<void> alive_;
  bool killed_ = false;
  std::unordered_map<QueryId, STSQuery> subscriptions_;
  QueryId next_query_id_ = 1;
  ObjectId next_object_id_ = 1;
  // Recent tuples for adjustment statistics.
  std::deque<StreamTuple> window_;
  size_t tuples_since_check_ = 0;
  std::vector<AdjustReport> adjustments_;
};

}  // namespace ps2

#endif  // PS2_RUNTIME_PS2STREAM_H_
