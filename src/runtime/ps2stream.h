#ifndef PS2_RUNTIME_PS2STREAM_H_
#define PS2_RUNTIME_PS2STREAM_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "adjust/load_controller.h"
#include "core/workload_stats.h"
#include "persist/durability.h"
#include "runtime/threaded_engine.h"
#include "text/tokenizer.h"

namespace ps2 {

// Top-level facade: the publish/subscribe service a downstream application
// embeds. It owns the vocabulary, builds the partition plan from a bootstrap
// sample (or a uniform default), runs the cluster, and can keep the load
// balanced automatically via local adjustments.
//
//   PS2Stream ps2(PS2StreamOptions{...});
//   ps2.Bootstrap(sample);                       // plan from historic data
//   QueryId qid = ps2.Subscribe("pizza AND downtown", region);
//   auto matches = ps2.Publish(loc, "best pizza downtown!");
//   ps2.Unsubscribe(qid);
//
// Two execution modes:
//   - synchronous (default): Publish processes the tuple inline and returns
//     its matches; load adjustment piggy-backs on the caller's thread.
//   - started (Start()/Stop()): a ThreadedEngine runs dispatcher, worker
//     and controller threads; Subscribe/Publish submit tuples and return
//     immediately (Publish returns no matches — deliveries are counted by
//     the merger and reported by Stop()). Load adjustment happens online on
//     the controller thread, with migrations installed live.
//
// Durability (options.durability.enabled): subscription mutations are
// journaled to a write-ahead log *before* they take effect, installed
// migrations are journaled by whichever runtime performs them, and
// Bootstrap/Checkpoint() capture the full state (vocabulary, plan, routing
// snapshot, live queries) as an atomic checkpoint. A crashed service is
// stood back up with Restore(), which loads the latest checkpoint, replays
// the WAL tail (truncating a torn final record), rebuilds the per-worker
// GI2 indexes and resumes serving — and logging — where it left off.
struct PS2StreamOptions {
  std::string partitioner = "hybrid";
  PartitionConfig partition;
  ClusterOptions cluster;
  // Automatic local load adjustment (synchronous mode; the started engine
  // uses engine.controller instead).
  bool auto_adjust = false;
  size_t adjust_check_interval = 100000;  // tuples between balance checks
  LocalAdjustConfig adjust;
  size_t window_capacity = 1 << 16;  // recent-tuple window for Phase I
  // Threaded engine configuration used by Start().
  EngineOptions engine;
  // Subscription WAL + checkpoints + crash recovery.
  DurabilityConfig durability;
};

class PS2Stream {
 public:
  explicit PS2Stream(PS2StreamOptions options = PS2StreamOptions());
  ~PS2Stream();

  PS2Stream(const PS2Stream&) = delete;
  PS2Stream& operator=(const PS2Stream&) = delete;

  // Builds the partition plan from a workload sample and starts the
  // cluster. Must be called before any Subscribe/Publish. Also folds the
  // sample's term occurrences into the vocabulary frequency profile.
  // With durability enabled this writes the initial checkpoint and opens
  // the WAL; a Bootstrap that cannot persist leaves the service
  // non-durable (check durable()).
  void Bootstrap(const WorkloadSample& sample);

  // --- durability -----------------------------------------------------------
  // Rebuilds the service from the durable directory (options.durability.dir
  // unless `dir` is given): latest checkpoint + WAL tail replay. Replaces
  // Bootstrap() on restart. Returns false when the directory holds no
  // usable checkpoint; the service is then untouched. On success the
  // service is bootstrapped, all subscriptions are live, and the WAL
  // continues at `dir` (durability is enabled even if the options left it
  // off — calling Restore() is the opt-in).
  bool Restore(const std::string& dir = std::string());

  // Writes a checkpoint now (also called automatically every
  // durability.checkpoint_every WAL records). Works in both modes; in
  // started mode the plan is captured under the routing writer lock, so
  // live migrations never interleave. Returns false when durability is off.
  bool Checkpoint();

  // Statistics of the last Restore() on this instance.
  const RecoveredState* recovered() const { return recovered_.get(); }
  // True while mutations are actually being journaled: the WAL is open and
  // has hit no I/O error. Goes false (sticky) if the log ever fails to
  // write — mutations after that point would not survive a crash.
  bool durable() const {
    return durability_ != nullptr && durability_->healthy();
  }
  // The durability manager (nullptr when durability is off) — exposed for
  // tooling and tests (e.g. forcing a WAL flush before a simulated crash).
  DurabilityManager* durability() { return durability_.get(); }

  // Crash simulation (tests and failure drills): tears down the engine
  // without draining, skips every graceful-shutdown step and drops the
  // durability manager without a final flush beyond what the WAL's sync
  // mode already guaranteed. The service is unusable afterwards — stand a
  // new one up with Restore().
  void Kill();

  // --- async engine ---------------------------------------------------------
  // Spawns the threaded engine over the bootstrapped cluster. Requires
  // Bootstrap() first. Subsequent Subscribe/Publish calls are submitted to
  // the engine instead of being processed inline.
  void Start();
  // Drains the engine and returns its run report. No-op RunReport when the
  // engine is not running.
  RunReport Stop();
  bool started() const { return engine_ != nullptr && engine_->running(); }
  ThreadedEngine* engine() { return engine_.get(); }

  // Registers a subscription. The expression uses the BoolExpr grammar
  // ("a AND (b OR c)"). Returns the assigned query id, or 0 when the
  // expression fails to parse.
  QueryId Subscribe(const std::string& expression, const Rect& region);
  void Subscribe(const STSQuery& query);
  void Unsubscribe(QueryId id);

  // Publishes an object; returns the subscriptions it matched (after
  // merger deduplication). In started mode the result is always empty —
  // matching happens asynchronously on the worker threads.
  std::vector<MatchResult> Publish(Point loc, const std::string& text);
  std::vector<MatchResult> Publish(const SpatioTextualObject& object);

  // --- introspection --------------------------------------------------------
  Vocabulary& vocabulary() { return vocab_; }
  Cluster& cluster() { return *cluster_; }
  const Cluster& cluster() const { return *cluster_; }
  size_t num_subscriptions() const { return subscriptions_.size(); }
  const std::unordered_map<QueryId, STSQuery>& subscriptions() const {
    return subscriptions_;
  }
  bool bootstrapped() const { return cluster_ != nullptr; }
  const std::vector<AdjustReport>& adjustments() const {
    return adjustments_;
  }

 private:
  void Track(const StreamTuple& tuple);
  void MaybeAutoAdjust();
  void MaybeCheckpoint();
  // Captures the current state (vocab, plan, snapshot, live queries) for a
  // checkpoint committed under `seq`.
  bool CommitCheckpointLocked(uint64_t seq);

  PS2StreamOptions options_;
  Vocabulary vocab_;
  Tokenizer tokenizer_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<LoadController> controller_;
  std::unique_ptr<ThreadedEngine> engine_;
  std::unique_ptr<DurabilityManager> durability_;
  std::unique_ptr<RecoveredState> recovered_;
  std::unordered_map<QueryId, STSQuery> subscriptions_;
  QueryId next_query_id_ = 1;
  ObjectId next_object_id_ = 1;
  // Recent tuples for adjustment statistics.
  std::deque<StreamTuple> window_;
  size_t tuples_since_check_ = 0;
  std::vector<AdjustReport> adjustments_;
};

}  // namespace ps2

#endif  // PS2_RUNTIME_PS2STREAM_H_
