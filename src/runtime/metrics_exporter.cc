#include "runtime/metrics_exporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace ps2 {

namespace {

// One exported scalar: how it renders (counter vs gauge, integer vs float)
// and how to read it off a report. Function pointers, not captures, so one
// static table serves the fleet row and every per-shard row.
struct Metric {
  const char* name;  // suffix after the prefix, e.g. "tuples_processed"
  const char* help;
  const char* type;  // "counter" | "gauge"
  bool integral;
  double (*get)(const RunReport&);
};

#define PS2_COUNTER(field, help)                                       \
  Metric {                                                             \
    #field, help, "counter", true,                                     \
        [](const RunReport& r) { return static_cast<double>(r.field); } \
  }

const Metric kMetrics[] = {
    PS2_COUNTER(tuples_processed, "Stream tuples processed."),
    PS2_COUNTER(objects, "Objects published."),
    PS2_COUNTER(inserts, "Subscription inserts applied."),
    PS2_COUNTER(deletes, "Subscription deletes applied."),
    PS2_COUNTER(matches_emitted, "Matches emitted by workers, pre-dedup."),
    PS2_COUNTER(matches_delivered, "Deduplicated matches delivered."),
    PS2_COUNTER(duplicates_suppressed, "Duplicate matches suppressed."),
    PS2_COUNTER(objects_discarded, "Objects discarded by admission."),
    PS2_COUNTER(session_deliveries, "Deliveries handed to sessions."),
    PS2_COUNTER(session_drops,
                "Deliveries lost to backpressure or closed sessions."),
    PS2_COUNTER(matches_unrouted, "Matches with no routed session."),
    PS2_COUNTER(dedup_kills, "Duplicates the shared window suppressed."),
    PS2_COUNTER(wait_spins, "Wait-strategy spin iterations."),
    PS2_COUNTER(wait_parks, "Wait-strategy futex parks."),
    PS2_COUNTER(audit_mismatches, "Merger-audit verdict disagreements."),
    PS2_COUNTER(adjustments, "Load-controller checks that moved work."),
    PS2_COUNTER(cells_migrated, "Cells migrated by load adjustment."),
    PS2_COUNTER(queries_migrated, "Queries migrated by load adjustment."),
    PS2_COUNTER(bytes_migrated, "Bytes migrated by load adjustment."),
    PS2_COUNTER(routing_epochs, "Routing snapshot versions published."),
    PS2_COUNTER(transport_errors, "Transport Send() failures."),
    PS2_COUNTER(frame_retries, "Reliable-link frame retransmissions."),
    PS2_COUNTER(frame_redeliveries,
                "Duplicate frames suppressed by link receivers."),
    PS2_COUNTER(frames_dropped, "Frames abandoned at quarantined shards."),
    PS2_COUNTER(fabric_dup_suppressed,
                "Cross-restart duplicate matches suppressed."),
    PS2_COUNTER(shard_restarts, "Supervisor shard restarts."),
    PS2_COUNTER(shards_quarantined, "Supervisor quarantine events."),
    PS2_COUNTER(quota_rejections, "Subscribes rejected over a count quota."),
    PS2_COUNTER(rate_limited, "Publishes rejected by a tenant token bucket."),
    PS2_COUNTER(overload_trips, "Overload-controller degraded-mode entries."),
    PS2_COUNTER(overload_sheds, "Subscribes shed while degraded."),
    Metric{"live_subscriptions", "Subscriptions live now.", "gauge", true,
           [](const RunReport& r) {
             return static_cast<double>(r.live_subscriptions);
           }},
    Metric{"shards", "Engine shards this report covers.", "gauge", true,
           [](const RunReport& r) { return static_cast<double>(r.shards); }},
    Metric{"wall_seconds", "Wall-clock seconds of the reported run.", "gauge",
           false, [](const RunReport& r) { return r.wall_seconds; }},
    Metric{"throughput_tps", "Tuples per second of the reported run.",
           "gauge", false, [](const RunReport& r) { return r.throughput_tps; }},
};

#undef PS2_COUNTER

struct LatencyMetric {
  const char* name;
  const char* help;
  const LatencyHistogram& (*get)(const RunReport&);
};

const LatencyMetric kLatencies[] = {
    {"match_latency_us", "Tuple-process to match latency (microseconds).",
     [](const RunReport& r) -> const LatencyHistogram& { return r.latency; }},
    {"delivery_latency_us",
     "Publish to session-delivery latency (microseconds).",
     [](const RunReport& r) -> const LatencyHistogram& {
       return r.delivery_latency;
     }},
};

constexpr double kQuantiles[] = {0.5, 0.9, 0.99};

void AppendValue(std::string* out, const Metric& m, const RunReport& r) {
  char buf[64];
  if (m.integral) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(m.get(r)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", m.get(r));
  }
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

// Atomic publish: a scraper reading `path` sees either the previous dump or
// this one, never a prefix.
bool WriteFileAtomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << body;
    if (!out.flush()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

std::string RenderPrometheus(const RunReport& report,
                             const std::vector<RunReport>* shard_reports,
                             const std::string& prefix) {
  std::string out;
  out.reserve(4096);
  for (const Metric& m : kMetrics) {
    const std::string full = prefix + "_" + m.name;
    out += "# HELP " + full + " " + m.help + "\n";
    out += "# TYPE " + full + " " + m.type + "\n";
    out += full + " ";
    AppendValue(&out, m, report);
    out += '\n';
    if (shard_reports != nullptr) {
      for (size_t s = 0; s < shard_reports->size(); ++s) {
        out += full + "{shard=\"" + std::to_string(s) + "\"} ";
        AppendValue(&out, m, (*shard_reports)[s]);
        out += '\n';
      }
    }
  }
  for (const LatencyMetric& lm : kLatencies) {
    const std::string full = prefix + "_" + lm.name;
    const LatencyHistogram& h = lm.get(report);
    out += "# HELP " + full + " " + lm.help + "\n";
    out += "# TYPE " + full + " summary\n";
    for (const double q : kQuantiles) {
      out += full + "{quantile=\"";
      AppendDouble(&out, q);
      out += "\"} ";
      AppendDouble(&out, h.count() > 0 ? h.PercentileMicros(q) : 0.0);
      out += '\n';
    }
    out += full + "_sum ";
    AppendDouble(&out, h.MeanMicros() * static_cast<double>(h.count()));
    out += '\n';
    out += full + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

std::string RenderJson(const RunReport& report) {
  std::string out = "{\n";
  for (const Metric& m : kMetrics) {
    out += "  \"";
    out += m.name;
    out += "\": ";
    AppendValue(&out, m, report);
    out += ",\n";
  }
  bool first_latency = true;
  for (const LatencyMetric& lm : kLatencies) {
    if (!first_latency) out += ",\n";
    first_latency = false;
    const LatencyHistogram& h = lm.get(report);
    out += "  \"";
    out += lm.name;
    out += "\": {\"count\": " + std::to_string(h.count());
    out += ", \"mean\": ";
    AppendDouble(&out, h.MeanMicros());
    out += ", \"max\": ";
    AppendDouble(&out, h.MaxMicros());
    for (const double q : kQuantiles) {
      char key[16];
      std::snprintf(key, sizeof(key), "p%g", q * 100);
      out += ", \"";
      out += key;
      out += "\": ";
      AppendDouble(&out, h.count() > 0 ? h.PercentileMicros(q) : 0.0);
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

MetricsExporter::MetricsExporter(Options options, SnapshotFn snapshot)
    : options_(std::move(options)), snapshot_(std::move(snapshot)) {}

MetricsExporter::~MetricsExporter() { Stop(); }

bool MetricsExporter::WriteOnce() {
  const RunReport report = snapshot_();
  bool ok = true;
  if (!options_.prometheus_path.empty()) {
    ok &= WriteFileAtomic(options_.prometheus_path,
                          RenderPrometheus(report, nullptr, options_.prefix));
  }
  if (!options_.json_path.empty()) {
    ok &= WriteFileAtomic(options_.json_path, RenderJson(report));
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

void MetricsExporter::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void MetricsExporter::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void MetricsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    WriteOnce();
    lock.lock();
  }
  // Final dump so a graceful shutdown leaves current files behind.
  lock.unlock();
  WriteOnce();
}

}  // namespace ps2
