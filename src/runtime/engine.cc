#include "runtime/engine.h"

#include "persist/durability.h"

namespace ps2 {

bool Engine::Recover(const std::string& dir, RecoveredState* out) {
  return RecoverState(dir, out);
}

}  // namespace ps2
