#include "runtime/engine.h"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/stopwatch.h"
#include "runtime/queue.h"

namespace ps2 {

Cluster::Cluster(PartitionPlan plan, const Vocabulary* vocab,
                 ClusterOptions options)
    : vocab_(vocab),
      index_(std::move(plan), vocab),
      dispatcher_(&index_),
      merger_(options.merger_window) {
  const int m = index_.plan().num_workers;
  workers_.reserve(m);
  for (int i = 0; i < m; ++i) {
    workers_.emplace_back(index_.plan().grid, vocab, options.worker_index);
  }
  tallies_.assign(m, WorkerLoadTally{});
}

void Cluster::Process(const StreamTuple& tuple,
                      std::vector<MatchResult>* delivered) {
  dispatcher_.Route(tuple, &scratch_deliveries_);
  for (const auto& d : scratch_deliveries_) {
    Apply(tuple, d, delivered);
  }
}

void Cluster::Apply(const StreamTuple& tuple,
                    const Dispatcher::Delivery& d,
                    std::vector<MatchResult>* delivered) {
  switch (tuple.kind) {
    case TupleKind::kObject: {
      scratch_matches_.clear();
      workers_[d.worker].Match(tuple.object, &scratch_matches_);
      tallies_[d.worker].objects++;
      for (const auto& m : scratch_matches_) {
        if (merger_.Accept(m) && delivered != nullptr) {
          delivered->push_back(m);
        }
      }
      break;
    }
    case TupleKind::kQueryInsert:
      workers_[d.worker].InsertIntoCells(tuple.query, d.cells);
      tallies_[d.worker].inserts++;
      break;
    case TupleKind::kQueryDelete:
      workers_[d.worker].Delete(tuple.query.id);
      tallies_[d.worker].deletes++;
      break;
  }
}

std::vector<double> Cluster::WorkerLoads(const CostModel& cm) const {
  std::vector<double> loads;
  loads.reserve(tallies_.size());
  for (const auto& t : tallies_) loads.push_back(WorkerLoad(cm, t));
  return loads;
}

void Cluster::ResetLoadWindow() {
  for (auto& t : tallies_) t.Clear();
  for (auto& w : workers_) w.ResetObjectCounters();
}

Cluster::MigrationStats Cluster::MigrateCell(CellId cell, WorkerId from,
                                             WorkerId to) {
  MigrationStats stats;
  if (from == to) return stats;
  stats.bytes = workers_[from].CellMigrationBytes(cell);
  std::vector<STSQuery> moved = workers_[from].ExtractCell(cell);
  stats.queries_moved = moved.size();
  const std::vector<CellId> cells{cell};
  for (const auto& q : moved) {
    workers_[to].InsertIntoCells(q, cells);
  }
  index_.RemapCellWorker(cell, from, to);
  return stats;
}

Cluster::MigrationStats Cluster::TextSplitCell(
    CellId cell, WorkerId keep, WorkerId to,
    const std::unordered_map<TermId, WorkerId>& term_map) {
  MigrationStats stats;
  std::vector<STSQuery> queries = workers_[keep].ExtractCell(cell);
  index_.SetCellTextRoute(cell, term_map, {keep, to});
  const TermRouter& router = *index_.plan().cells[cell].text;
  const std::vector<CellId> cells{cell};
  for (const auto& q : queries) {
    bool to_keep = false, to_other = false;
    for (const TermId t : q.expr.RoutingTerms(*vocab_)) {
      (router.Route(t) == keep ? to_keep : to_other) = true;
      // The cell just became text-routed: its H2 entries must be rebuilt
      // from the redistributed queries so objects keep reaching them.
      index_.AddH2(cell, t, router.Route(t));
    }
    if (to_keep) workers_[keep].InsertIntoCells(q, cells);
    if (to_other) {
      workers_[to].InsertIntoCells(q, cells);
      stats.queries_moved++;
      stats.bytes += q.MemoryBytes();
    }
  }
  return stats;
}

Cluster::MigrationStats Cluster::MergeCellTo(CellId cell, WorkerId to) {
  MigrationStats stats;
  const CellRoute& route = index_.plan().cells[cell];
  std::vector<WorkerId> sources;
  if (route.IsText()) {
    sources = route.text->workers();
  } else {
    sources.push_back(route.worker);
  }
  const std::vector<CellId> cells{cell};
  for (const WorkerId w : sources) {
    if (w == to) continue;
    stats.bytes += workers_[w].CellMigrationBytes(cell);
    for (const auto& q : workers_[w].ExtractCell(cell)) {
      workers_[to].InsertIntoCells(q, cells);
      stats.queries_moved++;
    }
  }
  index_.SetCellSpaceRoute(cell, to);
  return stats;
}

namespace {

// Work item delivered to a worker thread.
struct WorkItem {
  StreamTuple tuple;           // object or query update (cells filled below)
  std::vector<CellId> cells;   // for query updates
  int64_t enqueue_us = 0;
};

}  // namespace

RunReport RunThreaded(Cluster& cluster, const std::vector<StreamTuple>& input,
                      const EngineOptions& options) {
  const int num_workers = cluster.num_workers();
  const int num_dispatchers = std::max(1, options.num_dispatchers);

  std::vector<std::unique_ptr<BoundedQueue<WorkItem>>> queues;
  queues.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    queues.push_back(
        std::make_unique<BoundedQueue<WorkItem>>(options.queue_capacity));
  }

  std::shared_mutex route_mu;  // H2 writers exclusive, object routing shared
  std::atomic<size_t> next_index{0};
  std::atomic<uint64_t> discarded{0};

  std::mutex merge_mu;
  Merger& merger = cluster.merger();

  std::vector<LatencyHistogram> worker_latency(num_workers);
  std::vector<uint64_t> worker_tuples(num_workers, 0);

  Stopwatch wall;
  const int64_t start_us = NowMicros();

  // --- dispatcher threads ---------------------------------------------------
  auto dispatch_fn = [&](int /*dispatcher_id*/) {
    std::vector<WorkerId> workers;
    GridtIndex& index = cluster.router();
    while (true) {
      const size_t i = next_index.fetch_add(1);
      if (i >= input.size()) break;
      const StreamTuple& tuple = input[i];
      if (options.input_rate_tps > 0.0) {
        // Pace the stream: tuple i is due at i / rate seconds.
        const int64_t due_us =
            start_us + static_cast<int64_t>(1e6 * i / options.input_rate_tps);
        while (NowMicros() < due_us) {
          std::this_thread::yield();
        }
      }
      const int64_t now = NowMicros();
      if (tuple.kind == TupleKind::kObject) {
        {
          std::shared_lock<std::shared_mutex> lock(route_mu);
          index.RouteObject(tuple.object, &workers);
        }
        if (workers.empty()) {
          discarded.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (const WorkerId w : workers) {
          queues[w]->Push(WorkItem{tuple, {}, now});
        }
      } else {
        std::vector<PartitionPlan::QueryRoute> routes;
        {
          std::unique_lock<std::shared_mutex> lock(route_mu);
          routes = tuple.kind == TupleKind::kQueryInsert
                       ? index.RouteInsert(tuple.query)
                       : index.RouteDelete(tuple.query);
        }
        for (auto& r : routes) {
          queues[r.worker]->Push(WorkItem{tuple, std::move(r.cells), now});
        }
      }
    }
  };

  // --- worker threads --------------------------------------------------------
  auto worker_fn = [&](int w) {
    Gi2Index& gi2 = cluster.worker(w);
    std::vector<MatchResult> matches;
    while (true) {
      std::vector<WorkItem> batch = queues[w]->PopBatch(options.batch_size);
      if (batch.empty()) break;  // closed and drained
      for (WorkItem& item : batch) {
        switch (item.tuple.kind) {
          case TupleKind::kObject:
            matches.clear();
            gi2.Match(item.tuple.object, &matches);
            if (!matches.empty()) {
              std::lock_guard<std::mutex> lock(merge_mu);
              for (const auto& m : matches) merger.Accept(m);
            }
            break;
          case TupleKind::kQueryInsert:
            gi2.InsertIntoCells(item.tuple.query, item.cells);
            break;
          case TupleKind::kQueryDelete:
            gi2.Delete(item.tuple.query.id);
            break;
        }
        worker_tuples[w]++;
        worker_latency[w].Record(
            static_cast<double>(NowMicros() - item.enqueue_us));
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_dispatchers + num_workers);
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back(worker_fn, w);
  }
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(num_dispatchers);
  for (int d = 0; d < num_dispatchers; ++d) {
    dispatchers.emplace_back(dispatch_fn, d);
  }
  for (auto& t : dispatchers) t.join();
  for (auto& q : queues) q->Close();
  for (auto& t : threads) t.join();

  RunReport report;
  report.wall_seconds = wall.ElapsedSeconds();
  report.tuples_processed = input.size();
  for (const auto& t : input) {
    switch (t.kind) {
      case TupleKind::kObject:
        report.objects++;
        break;
      case TupleKind::kQueryInsert:
        report.inserts++;
        break;
      case TupleKind::kQueryDelete:
        report.deletes++;
        break;
    }
  }
  report.throughput_tps =
      report.wall_seconds > 0 ? input.size() / report.wall_seconds : 0.0;
  report.matches_delivered = merger.delivered();
  report.duplicates_suppressed = merger.duplicates();
  report.objects_discarded = discarded.load();
  for (int w = 0; w < num_workers; ++w) {
    report.latency.Merge(worker_latency[w]);
    report.per_worker_tuples.push_back(worker_tuples[w]);
    report.worker_memory_bytes.push_back(cluster.WorkerMemoryBytes(w));
  }
  report.dispatcher_memory_bytes = cluster.DispatcherMemoryBytes();
  return report;
}

}  // namespace ps2
