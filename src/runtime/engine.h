#ifndef PS2_RUNTIME_ENGINE_H_
#define PS2_RUNTIME_ENGINE_H_

#include <string>
#include <vector>

#include "adjust/load_controller.h"
#include "common/wait_strategy.h"
#include "runtime/cluster.h"
#include "runtime/metrics.h"

namespace ps2 {

class DeliverySink;
class Wal;
struct RecoveredState;

// Options of the threaded (wall-clock) engine.
struct EngineOptions {
  int num_dispatchers = 4;
  size_t queue_capacity = 4096;
  size_t batch_size = 64;
  // Input pacing in tuples/second; 0 = unthrottled (throughput mode).
  double input_rate_tps = 0.0;
  // Retain every dedup-fresh match for later inspection (tests compare the
  // exact deduped match set against the synchronous cluster).
  bool collect_matches = false;
  // How engine threads wait on empty/full rings (see common/wait_strategy.h):
  // park immediately, spin adaptively before parking, or busy-poll.
  WaitStrategy wait_strategy = WaitStrategy::kBlocking;
  // Audit mode: replay every worker match through the classic merger (under
  // a global lock, as the pre-ring engine did) and count verdicts that
  // disagree with the sharded dedup window. Serializes the match path —
  // for equivalence tests only, never production runs.
  bool merger_audit = false;
  // Recent-tuple window kept for the controller's Phase-I term statistics
  // (spread across dispatcher-local rings).
  size_t window_capacity = 1 << 15;

  // Online load-adjustment controller (disabled by default: the engine then
  // executes a frozen plan, like the pre-controller runtime).
  struct ControllerOptions {
    bool enabled = false;
    int interval_ms = 20;       // balance-check cadence
    size_t min_tuples = 2000;   // skip checks until this many new tuples
    LoadControllerConfig config;
  };
  ControllerOptions controller;

  // When non-null, the controller journals every installed migration (as
  // absolute cell-route records) to this write-ahead log, so crash recovery
  // lands on the post-migration plan. Not owned; must outlive the engine.
  // Subscription mutations are journaled by the facade before submission.
  Wal* wal = nullptr;

  // When non-null, worker threads deduplicate through this sink's shared
  // (query, object) window and deliver every fresh match straight through
  // it — no merger hop. In-process the sink is a DeliveryRouter (matches
  // land in subscriber sessions); in the shard fabric it is a per-shard
  // egress that serializes matches onto the transport. Not owned; must
  // outlive the engine. PS2Stream::Start() wires its own router here so
  // started-mode delivery matches the synchronous facade.
  DeliverySink* delivery = nullptr;
};

// A runtime that executes a tuple stream against a Cluster. The two
// implementations share the cluster's components but differ in *time*:
// ThreadedEngine measures wall-clock behavior across real dispatcher and
// worker threads; SimEngine reproduces the paper's figures in deterministic
// virtual time.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  // Executes the whole stream and reports the run's metrics.
  virtual RunReport Run(const std::vector<StreamTuple>& input) = 0;

  // Loads the durable state at `dir`: the latest committed checkpoint plus
  // a replay of the WAL segment chain, truncating any torn trailing record.
  // The caller stands a Cluster up from the state and constructs an engine
  // over it — PS2Stream::Restore() does exactly that. Forwards to
  // RecoverState() in persist/durability.h.
  static bool Recover(const std::string& dir, RecoveredState* out);
};

// Compatibility wrapper for the original free-function runtime: constructs
// a ThreadedEngine over `cluster` and runs `input` through it.
RunReport RunThreaded(Cluster& cluster, const std::vector<StreamTuple>& input,
                      const EngineOptions& options);

}  // namespace ps2

#endif  // PS2_RUNTIME_ENGINE_H_
