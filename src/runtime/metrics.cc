#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ps2 {

double RunReport::AvgWorkerMemory() const {
  if (worker_memory_bytes.empty()) return 0.0;
  double sum = 0.0;
  for (const size_t b : worker_memory_bytes) sum += static_cast<double>(b);
  return sum / worker_memory_bytes.size();
}

std::string RunReport::Summary() const {
  char buf[448];
  std::snprintf(buf, sizeof(buf),
                "tuples=%llu tps=%.0f emitted=%llu delivered=%llu "
                "dups=%llu lat{%s}",
                static_cast<unsigned long long>(tuples_processed),
                throughput_tps,
                static_cast<unsigned long long>(matches_emitted),
                static_cast<unsigned long long>(matches_delivered),
                static_cast<unsigned long long>(duplicates_suppressed),
                latency.Summary().c_str());
  std::string out = buf;
  if (session_deliveries > 0 || session_drops > 0 || matches_unrouted > 0) {
    std::snprintf(buf, sizeof(buf),
                  " sessions{delivered=%llu dropped=%llu unrouted=%llu "
                  "lat{%s}}",
                  static_cast<unsigned long long>(session_deliveries),
                  static_cast<unsigned long long>(session_drops),
                  static_cast<unsigned long long>(matches_unrouted),
                  delivery_latency.Summary().c_str());
    out += buf;
  }
  if (wait_spins > 0 || wait_parks > 0) {
    uint64_t ring_hw = 0;
    for (const uint64_t h : worker_ring_highwater) {
      ring_hw = std::max(ring_hw, h);
    }
    std::snprintf(buf, sizeof(buf),
                  " rings{hw=%llu spins=%llu parks=%llu}",
                  static_cast<unsigned long long>(ring_hw),
                  static_cast<unsigned long long>(wait_spins),
                  static_cast<unsigned long long>(wait_parks));
    out += buf;
  }
  if (audit_mismatches > 0) {
    std::snprintf(buf, sizeof(buf), " AUDIT_MISMATCHES=%llu",
                  static_cast<unsigned long long>(audit_mismatches));
    out += buf;
  }
  return out;
}

double RunReport::MaxWorkerShare() const {
  if (per_worker_tuples.empty()) return 0.0;
  uint64_t total = 0, mx = 0;
  for (const uint64_t t : per_worker_tuples) {
    total += t;
    mx = std::max(mx, t);
  }
  return total == 0 ? 0.0 : static_cast<double>(mx) / total;
}

}  // namespace ps2
