#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace ps2 {

namespace {

// printf-append that can never truncate: measure with a first vsnprintf
// pass, then format straight into the string's own storage. Summary lines
// embed LatencyHistogram::Summary() strings of unbounded width, so a fixed
// stack buffer silently loses the tail.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void
AppendF(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (needed > 0) {
    const size_t base = out->size();
    out->resize(base + static_cast<size_t>(needed) + 1);
    std::vsnprintf(&(*out)[base], static_cast<size_t>(needed) + 1, fmt, args);
    out->resize(base + static_cast<size_t>(needed));
  }
  va_end(args);
}

}  // namespace

double RunReport::AvgWorkerMemory() const {
  if (worker_memory_bytes.empty()) return 0.0;
  double sum = 0.0;
  for (const size_t b : worker_memory_bytes) sum += static_cast<double>(b);
  return sum / worker_memory_bytes.size();
}

void RunReport::MergeShard(const RunReport& shard) {
  tuples_processed += shard.tuples_processed;
  objects += shard.objects;
  inserts += shard.inserts;
  deletes += shard.deletes;
  matches_delivered += shard.matches_delivered;
  duplicates_suppressed += shard.duplicates_suppressed;
  matches_emitted += shard.matches_emitted;
  objects_discarded += shard.objects_discarded;
  session_deliveries += shard.session_deliveries;
  session_drops += shard.session_drops;
  matches_unrouted += shard.matches_unrouted;
  // Shards ran concurrently: the fleet's wall time is the slowest shard's,
  // and throughput is the merged totals over that time — summing per-shard
  // rates would double-count the overlap.
  wall_seconds = std::max(wall_seconds, shard.wall_seconds);
  throughput_tps =
      wall_seconds > 0 ? tuples_processed / wall_seconds : 0.0;
  latency.Merge(shard.latency);
  delivery_latency.Merge(shard.delivery_latency);
  per_worker_tuples.insert(per_worker_tuples.end(),
                           shard.per_worker_tuples.begin(),
                           shard.per_worker_tuples.end());
  dispatcher_memory_bytes += shard.dispatcher_memory_bytes;
  worker_memory_bytes.insert(worker_memory_bytes.end(),
                             shard.worker_memory_bytes.begin(),
                             shard.worker_memory_bytes.end());
  dispatch.Merge(shard.dispatch);
  adjustments += shard.adjustments;
  cells_migrated += shard.cells_migrated;
  queries_migrated += shard.queries_migrated;
  bytes_migrated += shard.bytes_migrated;
  routing_epochs += shard.routing_epochs;
  dedup_kills += shard.dedup_kills;
  wait_spins += shard.wait_spins;
  wait_parks += shard.wait_parks;
  audit_mismatches += shard.audit_mismatches;
  worker_ring_highwater.insert(worker_ring_highwater.end(),
                               shard.worker_ring_highwater.begin(),
                               shard.worker_ring_highwater.end());
  transport_errors += shard.transport_errors;
  frame_retries += shard.frame_retries;
  frame_redeliveries += shard.frame_redeliveries;
  frames_dropped += shard.frames_dropped;
  fabric_dup_suppressed += shard.fabric_dup_suppressed;
  shard_restarts += shard.shard_restarts;
  shards_quarantined += shard.shards_quarantined;
  quota_rejections += shard.quota_rejections;
  rate_limited += shard.rate_limited;
  overload_trips += shard.overload_trips;
  overload_sheds += shard.overload_sheds;
  live_subscriptions += shard.live_subscriptions;
  shards += shard.shards;
}

std::string FleetSummary(const std::vector<RunReport>& shard_reports,
                         const RunReport& fleet) {
  std::string out;
  for (size_t i = 0; i < shard_reports.size(); ++i) {
    AppendF(&out, "shard %zu: ", i);
    out += shard_reports[i].Summary();
    out += '\n';
  }
  out += "fleet:   ";
  out += fleet.Summary();
  return out;
}

std::string RunReport::Summary() const {
  std::string out;
  if (shards > 1) AppendF(&out, "shards=%d ", shards);
  AppendF(&out,
          "tuples=%llu tps=%.0f emitted=%llu delivered=%llu "
          "dups=%llu lat{%s}",
          static_cast<unsigned long long>(tuples_processed), throughput_tps,
          static_cast<unsigned long long>(matches_emitted),
          static_cast<unsigned long long>(matches_delivered),
          static_cast<unsigned long long>(duplicates_suppressed),
          latency.Summary().c_str());
  if (session_deliveries > 0 || session_drops > 0 || matches_unrouted > 0) {
    AppendF(&out,
            " sessions{delivered=%llu dropped=%llu unrouted=%llu "
            "lat{%s}}",
            static_cast<unsigned long long>(session_deliveries),
            static_cast<unsigned long long>(session_drops),
            static_cast<unsigned long long>(matches_unrouted),
            delivery_latency.Summary().c_str());
  }
  if (wait_spins > 0 || wait_parks > 0) {
    uint64_t ring_hw = 0;
    for (const uint64_t h : worker_ring_highwater) {
      ring_hw = std::max(ring_hw, h);
    }
    AppendF(&out, " rings{hw=%llu spins=%llu parks=%llu}",
            static_cast<unsigned long long>(ring_hw),
            static_cast<unsigned long long>(wait_spins),
            static_cast<unsigned long long>(wait_parks));
  }
  if (transport_errors > 0 || frame_retries > 0 || frame_redeliveries > 0 ||
      frames_dropped > 0 || fabric_dup_suppressed > 0 || shard_restarts > 0 ||
      shards_quarantined > 0) {
    AppendF(&out,
            " faults{xport_err=%llu retries=%llu redeliveries=%llu "
            "dropped=%llu dup_supp=%llu restarts=%llu quarantined=%llu}",
            static_cast<unsigned long long>(transport_errors),
            static_cast<unsigned long long>(frame_retries),
            static_cast<unsigned long long>(frame_redeliveries),
            static_cast<unsigned long long>(frames_dropped),
            static_cast<unsigned long long>(fabric_dup_suppressed),
            static_cast<unsigned long long>(shard_restarts),
            static_cast<unsigned long long>(shards_quarantined));
  }
  if (quota_rejections > 0 || rate_limited > 0 || overload_trips > 0 ||
      overload_sheds > 0) {
    AppendF(&out, " admission{quota=%llu rate=%llu trips=%llu sheds=%llu}",
            static_cast<unsigned long long>(quota_rejections),
            static_cast<unsigned long long>(rate_limited),
            static_cast<unsigned long long>(overload_trips),
            static_cast<unsigned long long>(overload_sheds));
  }
  if (audit_mismatches > 0) {
    AppendF(&out, " AUDIT_MISMATCHES=%llu",
            static_cast<unsigned long long>(audit_mismatches));
  }
  return out;
}

double RunReport::MaxWorkerShare() const {
  if (per_worker_tuples.empty()) return 0.0;
  uint64_t total = 0, mx = 0;
  for (const uint64_t t : per_worker_tuples) {
    total += t;
    mx = std::max(mx, t);
  }
  return total == 0 ? 0.0 : static_cast<double>(mx) / total;
}

}  // namespace ps2
