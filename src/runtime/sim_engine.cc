#include "runtime/sim_engine.h"

#include <algorithm>
#include <deque>

#include "api/delivery_sink.h"
#include "common/stopwatch.h"

namespace ps2 {

SimReport RunSimulation(Cluster& cluster,
                        const std::vector<StreamTuple>& input,
                        const SimOptions& options) {
  SimReport report;
  const int m = cluster.num_workers();
  std::vector<double> busy_until(m, 0.0);   // seconds, virtual time
  std::vector<double> busy_total(m, 0.0);   // accumulated service time
  std::vector<double> busy_window(m, 0.0);  // service time, current window
  double window_max_util_sum = 0.0;
  size_t num_windows = 0;
  size_t window_pos = 0;
  LoadControllerConfig controller_config;
  controller_config.adjust = options.adjust;
  LoadController controller(controller_config);
  SyncMigrationExecutor executor(cluster);

  // Sliding window of recent tuples for Phase I term statistics.
  std::deque<const StreamTuple*> window;

  std::vector<Dispatcher::Delivery> deliveries;
  std::vector<MatchResult> matches;
  Dispatcher& dispatcher = cluster.dispatcher();

  size_t since_check = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    const StreamTuple& tuple = input[i];
    const double arrival = static_cast<double>(i) / options.arrival_rate_tps;

    window.push_back(&tuple);
    if (window.size() > options.window_capacity) window.pop_front();

    dispatcher.Route(tuple, &deliveries);
    double finish_max = arrival;
    for (const auto& d : deliveries) {
      double service_us = 0.0;
      switch (tuple.kind) {
        case TupleKind::kObject:
          service_us = options.object_service_us;
          break;
        case TupleKind::kQueryInsert:
          service_us = options.insert_service_us;
          break;
        case TupleKind::kQueryDelete:
          service_us = options.delete_service_us;
          break;
      }
      matches.clear();
      if (options.measure_service) {
        if (tuple.kind == TupleKind::kObject) {
          // Definition-1 matching charge (see SimOptions::per_candidate_us).
          const CellId cell =
              cluster.router().plan().grid.CellOf(tuple.object.loc);
          service_us +=
              options.per_candidate_us *
              cluster.worker(d.worker).StatsFor(cell).num_queries;
        }
        Stopwatch op_timer;
        cluster.Apply(tuple, d, &matches);
        service_us += static_cast<double>(op_timer.ElapsedNanos()) / 1e3;
      } else {
        cluster.Apply(tuple, d, &matches);
      }
      report.matches_delivered += matches.size();
      const double start = std::max(arrival, busy_until[d.worker]);
      const double finish = start + service_us * 1e-6;
      if (options.delivery != nullptr) {
        for (const auto& m : matches) {
          Delivery dv;
          dv.query_id = m.query_id;
          dv.object_id = m.object_id;
          dv.publish_us = static_cast<int64_t>(arrival * 1e6);
          dv.deliver_us = static_cast<int64_t>(finish * 1e6);
          dv.score = m.score;
          dv.expire_us = m.expire_us;
          options.delivery->DeliverBatch(&dv, 1);
        }
      }
      busy_until[d.worker] = finish;
      busy_total[d.worker] += service_us * 1e-6;
      busy_window[d.worker] += service_us * 1e-6;
      finish_max = std::max(finish_max, finish);
    }
    report.latency.Record((finish_max - arrival) * 1e6);

    if (++window_pos >= options.capacity_window) {
      const double span =
          static_cast<double>(window_pos) / options.arrival_rate_tps;
      const double mx =
          *std::max_element(busy_window.begin(), busy_window.end());
      window_max_util_sum += mx / span;
      ++num_windows;
      std::fill(busy_window.begin(), busy_window.end(), 0.0);
      window_pos = 0;
    }

    if (options.enable_adjust && ++since_check >= options.adjust_check_interval) {
      since_check = 0;
      WorkloadSample sample;
      for (const StreamTuple* t : window) {
        switch (t->kind) {
          case TupleKind::kObject:
            sample.objects.push_back(t->object);
            break;
          case TupleKind::kQueryInsert:
            sample.inserts.push_back(t->query);
            break;
          case TupleKind::kQueryDelete:
            sample.deletes.push_back(t->query);
            break;
        }
      }
      AdjustReport adj = controller.Check(
          cluster, cluster.WorkerLoads(options.adjust.cost), sample, executor);
      if (adj.triggered &&
          (adj.bytes_migrated > 0 || adj.phase1_splits > 0 ||
           adj.phase1_merges > 0)) {
        // The two involved workers stall for the migration duration: tuples
        // routed to them meanwhile queue behind the stall.
        const double stall_until = arrival + adj.migration_seconds;
        if (adj.overloaded >= 0) {
          busy_until[adj.overloaded] =
              std::max(busy_until[adj.overloaded], stall_until);
        }
        if (adj.underloaded >= 0) {
          busy_until[adj.underloaded] =
              std::max(busy_until[adj.underloaded], stall_until);
        }
        report.migrations.push_back(SimMigrationEvent{arrival, adj});
        // Load accounting restarts after an adjustment, as in the paper's
        // periodic windows.
        cluster.ResetLoadWindow();
      }
    }
  }

  report.tuples = input.size();
  report.sim_seconds =
      static_cast<double>(input.size()) / options.arrival_rate_tps;

  double bytes = 0.0, secs = 0.0, sel = 0.0;
  for (const auto& e : report.migrations) {
    if (e.report.bytes_migrated == 0) continue;
    ++report.num_migrations;
    bytes += static_cast<double>(e.report.bytes_migrated);
    secs += e.report.migration_seconds;
    sel += e.report.selection.selection_ms;
  }
  if (report.num_migrations > 0) {
    report.avg_migration_bytes = bytes / report.num_migrations;
    report.avg_migration_seconds = secs / report.num_migrations;
    report.avg_selection_ms = sel / report.num_migrations;
  }
  report.frac_below_100ms = report.latency.FractionBelow(100e3);
  report.frac_100_to_1000ms =
      report.latency.FractionBelow(1000e3) - report.frac_below_100ms;
  report.frac_above_1000ms = 1.0 - report.latency.FractionBelow(1000e3);

  double max_util = 0.0;
  for (int w = 0; w < m; ++w) {
    max_util = std::max(max_util, busy_total[w] / report.sim_seconds);
  }
  report.throughput_estimate_tps =
      max_util > 0 ? options.arrival_rate_tps / max_util
                   : options.arrival_rate_tps;
  const double mean_window_max =
      num_windows > 0 ? window_max_util_sum / num_windows : max_util;
  report.throughput_windowed_tps =
      mean_window_max > 0 ? options.arrival_rate_tps / mean_window_max
                          : options.arrival_rate_tps;
  return report;
}

RunReport SimEngine::Run(const std::vector<StreamTuple>& input) {
  sim_report_ = RunSimulation(cluster_, input, options_);
  RunReport report;
  report.tuples_processed = sim_report_.tuples;
  for (const auto& t : input) {
    switch (t.kind) {
      case TupleKind::kObject:
        report.objects++;
        break;
      case TupleKind::kQueryInsert:
        report.inserts++;
        break;
      case TupleKind::kQueryDelete:
        report.deletes++;
        break;
    }
  }
  report.wall_seconds = sim_report_.sim_seconds;
  report.throughput_tps = sim_report_.throughput_windowed_tps;
  report.latency = sim_report_.latency;
  report.matches_delivered = sim_report_.matches_delivered;
  report.duplicates_suppressed = cluster_.merger().duplicates();
  // Every sim-side match flows through Merger::Accept, so worker-emitted
  // matches are exactly delivered + suppressed duplicates.
  report.matches_emitted =
      sim_report_.matches_delivered + report.duplicates_suppressed;
  report.objects_discarded = cluster_.dispatcher().stats().objects_discarded;
  for (const auto& t : cluster_.tallies()) {
    report.per_worker_tuples.push_back(t.objects + t.inserts + t.deletes);
  }
  report.adjustments = sim_report_.migrations.size();
  uint64_t queries_moved = 0, bytes_moved = 0;
  for (const auto& m : sim_report_.migrations) {
    queries_moved += m.report.queries_moved;
    bytes_moved += m.report.bytes_migrated;
    report.cells_migrated += m.report.selection.cells.size() +
                             m.report.phase1_splits + m.report.phase1_merges;
  }
  report.queries_migrated = queries_moved;
  report.bytes_migrated = bytes_moved;
  report.dispatcher_memory_bytes = cluster_.DispatcherMemoryBytes();
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    report.worker_memory_bytes.push_back(cluster_.WorkerMemoryBytes(w));
  }
  report.dispatch = cluster_.dispatcher().stats();
  return report;
}

}  // namespace ps2
