#ifndef PS2_RUNTIME_METRICS_H_
#define PS2_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/latency.h"
#include "dispatch/dispatch_stats.h"

namespace ps2 {

// Result sheet of one runtime execution; benchmarks print these.
struct RunReport {
  uint64_t tuples_processed = 0;
  uint64_t objects = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t matches_delivered = 0;
  uint64_t duplicates_suppressed = 0;
  // Matches emitted by worker indexes before merger dedup (>= delivered;
  // the gap is cross-worker duplicates plus matches found after Stop()'s
  // drain cutoff in aborted runs).
  uint64_t matches_emitted = 0;
  uint64_t objects_discarded = 0;
  // Session delivery (api/ layer, aggregated across sessions by
  // PS2Stream::Stop): deliveries handed to subscriber sessions, deliveries
  // lost to backpressure/closed sessions, and merger-fresh matches whose
  // query had no routed session.
  uint64_t session_deliveries = 0;
  uint64_t session_drops = 0;
  uint64_t matches_unrouted = 0;
  double wall_seconds = 0.0;
  double throughput_tps = 0.0;  // tuples per second
  LatencyHistogram latency;
  // Publish -> session-delivery latency (stamped at engine Submit / facade
  // Post, recorded when the match reaches its session).
  LatencyHistogram delivery_latency;
  std::vector<uint64_t> per_worker_tuples;
  size_t dispatcher_memory_bytes = 0;
  std::vector<size_t> worker_memory_bytes;

  // Routing statistics aggregated across dispatcher threads.
  DispatchStats dispatch;

  // Online load adjustment (threaded engine's controller; zero when the
  // controller is disabled or the run stayed balanced).
  uint64_t adjustments = 0;        // checks that moved something
  uint64_t cells_migrated = 0;
  uint64_t queries_migrated = 0;
  uint64_t bytes_migrated = 0;
  uint64_t routing_epochs = 0;     // snapshot versions published

  // Threaded data-plane internals (zero for synchronous/sim runs).
  uint64_t dedup_kills = 0;        // duplicates the sharded window suppressed
  uint64_t wait_spins = 0;         // spin iterations across all WaitContexts
  uint64_t wait_parks = 0;         // futex parks across all WaitContexts
  uint64_t audit_mismatches = 0;   // merger-audit verdict disagreements
  // Deepest any of a worker's SPSC data rings ever got (one entry per
  // worker; producer-side estimate).
  std::vector<uint64_t> worker_ring_highwater;

  // Shard-fabric fault tolerance (all zero for single-engine runs and for
  // fabrics that never saw a fault): transport Send() failures, reliable-
  // link retransmissions, duplicate frames the link receivers suppressed,
  // frames abandoned at quarantined shards, cross-restart duplicate matches
  // the front window killed, and the supervisor's restart/quarantine tally.
  uint64_t transport_errors = 0;
  uint64_t frame_retries = 0;
  uint64_t frame_redeliveries = 0;
  uint64_t frames_dropped = 0;
  uint64_t fabric_dup_suppressed = 0;
  uint64_t shard_restarts = 0;
  uint64_t shards_quarantined = 0;

  // Admission control (facade layer; zero when quotas and the overload
  // controller are disabled): subscribes rejected over a count quota,
  // publishes rejected by a tenant token bucket, overload-controller
  // degraded-mode entries, and subscribes shed while degraded.
  uint64_t quota_rejections = 0;
  uint64_t rate_limited = 0;
  uint64_t overload_trips = 0;
  uint64_t overload_sheds = 0;
  // Gauge: subscriptions live at report time (facade-maintained).
  uint64_t live_subscriptions = 0;

  // Engine shards this report covers: 1 for a single engine, N after
  // MergeShard folded a fleet together (the shard fabric's Stop()).
  int shards = 1;

  double AvgWorkerMemory() const;
  double MaxWorkerShare() const;  // max per-worker tuples / total

  // Folds one shard's report into this fleet report: counters sum,
  // histograms and dispatch stats merge, per-worker vectors append (so the
  // fleet report lists every worker of every shard), wall time is the
  // slowest shard's (they ran concurrently), and throughput is recomputed
  // over the merged totals.
  void MergeShard(const RunReport& shard);

  // One-line digest (throughput, match counters, latency) for bench logs;
  // prefixed with the shard count when the report covers a fleet.
  std::string Summary() const;
};

// Per-shard sections followed by the fleet-total Summary() line — what a
// multi-shard bench or test prints to show both the balance across shards
// and the aggregate. `shard_reports` are the individual engines' reports,
// `fleet` the MergeShard() fold of them.
std::string FleetSummary(const std::vector<RunReport>& shard_reports,
                         const RunReport& fleet);

}  // namespace ps2

#endif  // PS2_RUNTIME_METRICS_H_
