#ifndef PS2_RUNTIME_METRICS_EXPORTER_H_
#define PS2_RUNTIME_METRICS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics.h"

namespace ps2 {

// Renders a RunReport as Prometheus text exposition format (version 0.0.4):
// one `# HELP` / `# TYPE` pair per metric, `<prefix>_` metric names, latency
// histograms as `{quantile="..."}` summary lines plus `_count`. When
// `shard_reports` is non-null, per-shard variants carry a `{shard="N"}`
// label next to the fleet totals, mirroring FleetSummary()'s sections.
std::string RenderPrometheus(const RunReport& report,
                             const std::vector<RunReport>* shard_reports,
                             const std::string& prefix = "ps2");

// The same counters as a single flat JSON object (python -m json.tool
// clean), for the periodic-dump consumers that don't scrape.
std::string RenderJson(const RunReport& report);

// Periodically snapshots a RunReport via the supplied callback and writes
// the rendered forms to disk (tmp-file + rename, so a scraper never reads a
// torn file). Owns one background thread between Start() and Stop();
// WriteOnce() is the deterministic single-shot used by tests and
// plan_inspector.
class MetricsExporter {
 public:
  struct Options {
    std::string prometheus_path;  // empty: skip the Prometheus file
    std::string json_path;        // empty: skip the JSON file
    uint64_t interval_ms = 1000;
    std::string prefix = "ps2";
  };

  using SnapshotFn = std::function<RunReport()>;

  MetricsExporter(Options options, SnapshotFn snapshot);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  // Renders one snapshot to the configured paths now. Returns false when
  // any configured file could not be written. Thread-safe against the
  // background thread.
  bool WriteOnce();

  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  // Completed dump cycles (each WriteOnce and each periodic tick).
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  const Options options_;
  const SnapshotFn snapshot_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> dumps_{0};
};

}  // namespace ps2

#endif  // PS2_RUNTIME_METRICS_EXPORTER_H_
