#ifndef PS2_RUNTIME_SPSC_RING_H_
#define PS2_RUNTIME_SPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/wait_strategy.h"

namespace ps2 {

// Bounded lock-free single-producer / single-consumer ring: the threaded
// engine's queue hop (dispatcher -> worker, submit -> dispatcher), replacing
// the mutex+condvar BoundedQueue on the data path. Matches BoundedQueue's
// stream semantics — FIFO, bounded with producer backpressure, Close() ends
// the stream but queued items drain first — without a lock on either side:
//
//   producer:  TryPush / Push(item, WaitContext)    (one thread)
//   consumer:  PopBatch                             (one other thread)
//   any:       Close
//
// head_ (next slot to pop) is written only by the consumer, tail_ (next
// slot to fill) only by the producer; each lives on its own cache line next
// to the *other* side's cached copy, so the fast paths run entirely out of
// local lines and only touch the shared line when the cache runs dry.
//
// Blocking is delegated to EventCounts so parked threads cost nothing:
// the producer parks on the ring-owned producer_ready_ (consumer notifies
// when it frees slots of a full ring), the consumer parks on an external
// EventCount shared across all rings it drains (producer notifies on the
// empty -> non-empty transition). Both notify decisions read the other
// side's fresh index after a seq_cst fence — the classic store-buffer
// pattern; a stale cached index could skip the notify a parked peer needs.
template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 64). The consumer's
  // EventCount is shared by every ring that consumer drains; it must
  // outlive the ring.
  explicit SpscRing(size_t min_capacity, EventCount* consumer_ready)
      : consumer_ready_(consumer_ready) {
    size_t cap = 64;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // --- producer side --------------------------------------------------------
  // Non-blocking: false when the ring is full or closed.
  bool TryPush(T&& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ >= capacity()) return false;
    }
    slots_[t & mask_] = std::move(item);
    tail_.store(t + 1, std::memory_order_release);
    const uint64_t depth = t + 1 - head_cache_;
    if (depth > highwater_) highwater_ = depth;
    // Empty -> non-empty transition check against the consumer's *fresh*
    // head: the consumer may have drained past head_cache_ and parked.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (head_.load(std::memory_order_relaxed) == t) consumer_ready_->Notify();
    return true;
  }

  // Blocks (per the context's strategy) until pushed; false once closed.
  bool Push(T&& item, WaitContext& ctx) {
    T local = std::move(item);
    while (true) {
      if (TryPush(std::move(local))) return true;
      if (closed_.load(std::memory_order_acquire)) return false;
      ctx.Await(producer_ready_, [this] {
        return closed_.load(std::memory_order_relaxed) ||
               tail_.load(std::memory_order_relaxed) -
                       head_.load(std::memory_order_acquire) <
                   capacity();
      });
    }
  }

  // --- consumer side --------------------------------------------------------
  // Non-blocking: appends up to `max` items to `out`, returns the count.
  size_t PopBatch(size_t max, std::vector<T>* out) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (tail_cache_ == h) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (tail_cache_ == h) return 0;
    }
    size_t n = static_cast<size_t>(tail_cache_ - h);
    if (n > max) n = max;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(slots_[(h + i) & mask_]));
    }
    head_.store(h + n, std::memory_order_release);
    // A producer parks only on a full ring; its post-Prepare re-check reads
    // head_ fresh, so the notify pairs with the fence the same way as the
    // push side.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (tail_.load(std::memory_order_relaxed) - h >= capacity()) {
      producer_ready_.Notify();
    }
    return n;
  }

  // Items currently queued (consumer-side view; approximate from the
  // producer's thread).
  size_t pending() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

  bool Empty() const { return pending() == 0; }

  // --- lifecycle ------------------------------------------------------------
  // Ends the stream: further pushes fail, queued items remain poppable.
  // Callable from any thread (typically the engine's teardown thread).
  void Close() {
    closed_.store(true, std::memory_order_seq_cst);
    producer_ready_.Notify();
    consumer_ready_->Notify();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  bool closed_and_drained() const { return closed() && Empty(); }

  // Deepest the ring ever got (producer-side estimate; read after join).
  uint64_t highwater() const { return highwater_; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  EventCount* consumer_ready_;
  EventCount producer_ready_;
  std::atomic<bool> closed_{false};

  // Consumer line: head_ plus the consumer's cached copy of tail_.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;
  // Producer line: tail_ plus the producer's cached copy of head_ and the
  // producer-maintained depth high-water mark.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
  uint64_t highwater_ = 0;
};

}  // namespace ps2

#endif  // PS2_RUNTIME_SPSC_RING_H_
