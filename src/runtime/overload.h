#ifndef PS2_RUNTIME_OVERLOAD_H_
#define PS2_RUNTIME_OVERLOAD_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "api/delivery_router.h"

namespace ps2 {

// Overload admission control at the facade boundary: watches the two queue
// families that can wedge under hostile aggregate load — the subscriber
// sessions' bounded delivery queues and the threaded data plane's SPSC
// worker rings — and degrades *before* they fill. Watermarks are fill
// fractions (queued / capacity); hysteresis (enter at `high_watermark`,
// leave at `low_watermark`) keeps a load spike from flapping the mode on
// every sample.
//
// Degraded mode does two things, both optional:
//   - shed_subscribes: new Subscribe calls get kResourceExhausted until the
//     pressure falls below the low watermark (existing traffic continues);
//   - force_drop_oldest: kBlock sessions degrade to drop-oldest (via
//     DeliveryRouter::SetShedding), so slow consumers shed their own
//     backlog instead of parking the delivering threads.
struct OverloadConfig {
  bool enabled = false;
  double high_watermark = 0.75;
  double low_watermark = 0.50;
  // Posts between pressure samples; the fill computation walks every live
  // session and worker ring, so it must stay off the per-publish path.
  uint64_t check_interval = 64;
  bool shed_subscribes = true;
  bool force_drop_oldest = true;
};

class OverloadController {
 public:
  explicit OverloadController(OverloadConfig config) : config_(config) {}

  // True every `check_interval`-th call (control-plane thread only): the
  // facade then gathers the fills and calls Observe.
  bool ShouldSample() {
    if (!config_.enabled) return false;
    if (++since_sample_ < config_.check_interval) return false;
    since_sample_ = 0;
    return true;
  }

  // Feeds one pressure sample; enters or leaves degraded mode with
  // hysteresis and, when configured, toggles the router's shedding flag.
  void Observe(double session_fill, double ring_fill,
               DeliveryRouter* router) {
    const double fill = std::max(session_fill, ring_fill);
    if (!degraded_.load(std::memory_order_relaxed)) {
      if (fill >= config_.high_watermark) {
        degraded_.store(true, std::memory_order_relaxed);
        trips_.fetch_add(1, std::memory_order_relaxed);
        if (config_.force_drop_oldest && router != nullptr) {
          router->SetShedding(true);
        }
      }
    } else if (fill <= config_.low_watermark) {
      degraded_.store(false, std::memory_order_relaxed);
      if (config_.force_drop_oldest && router != nullptr) {
        router->SetShedding(false);
      }
    }
  }

  // True while in degraded mode; Subscribe consults this (with
  // shed_subscribes) before admitting.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  bool shed_subscribes() const {
    return config_.shed_subscribes && degraded();
  }
  void CountShed() { sheds_.fetch_add(1, std::memory_order_relaxed); }

  const OverloadConfig& config() const { return config_; }
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }

 private:
  OverloadConfig config_;
  uint64_t since_sample_ = 0;
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> trips_{0};
  std::atomic<uint64_t> sheds_{0};
};

}  // namespace ps2

#endif  // PS2_RUNTIME_OVERLOAD_H_
