#include "runtime/cluster.h"

namespace ps2 {

Cluster::Cluster(PartitionPlan plan, const Vocabulary* vocab,
                 ClusterOptions options)
    : vocab_(vocab),
      index_(std::move(plan), vocab),
      dispatcher_(&index_),
      merger_(options.merger_window) {
  const int m = index_.plan().num_workers;
  workers_.reserve(m);
  for (int i = 0; i < m; ++i) {
    workers_.emplace_back(index_.plan().grid, vocab, options.worker_index);
  }
  tallies_.assign(m, WorkerLoadTally{});
}

void Cluster::Process(const StreamTuple& tuple,
                      std::vector<MatchResult>* delivered) {
  dispatcher_.Route(tuple, &scratch_deliveries_);
  for (const auto& d : scratch_deliveries_) {
    Apply(tuple, d, delivered);
  }
}

void Cluster::Apply(const StreamTuple& tuple,
                    const Dispatcher::Delivery& d,
                    std::vector<MatchResult>* delivered) {
  switch (tuple.kind) {
    case TupleKind::kObject: {
      scratch_matches_.clear();
      workers_[d.worker].Match(tuple.object, &scratch_matches_);
      tallies_[d.worker].objects++;
      for (const auto& m : scratch_matches_) {
        if (merger_.Accept(m) && delivered != nullptr) {
          delivered->push_back(m);
        }
      }
      break;
    }
    case TupleKind::kQueryInsert:
      workers_[d.worker].InsertIntoCells(tuple.query, d.cells);
      tallies_[d.worker].inserts++;
      break;
    case TupleKind::kQueryDelete:
      workers_[d.worker].Delete(tuple.query.id);
      tallies_[d.worker].deletes++;
      break;
  }
}

std::vector<double> Cluster::WorkerLoads(const CostModel& cm) const {
  std::vector<double> loads;
  loads.reserve(tallies_.size());
  for (const auto& t : tallies_) loads.push_back(WorkerLoad(cm, t));
  return loads;
}

void Cluster::ResetLoadWindow() {
  for (auto& t : tallies_) t.Clear();
  for (auto& w : workers_) w.ResetObjectCounters();
}

Cluster::MigrationStats Cluster::MigrateCell(CellId cell, WorkerId from,
                                             WorkerId to) {
  MigrationStats stats;
  if (from == to) return stats;
  stats.bytes = workers_[from].CellMigrationBytes(cell);
  std::vector<STSQuery> moved = workers_[from].ExtractCell(cell);
  stats.queries_moved = moved.size();
  const std::vector<CellId> cells{cell};
  for (const auto& q : moved) {
    workers_[to].InsertIntoCells(q, cells);
  }
  index_.RemapCellWorker(cell, from, to);
  return stats;
}

Cluster::MigrationStats Cluster::TextSplitCell(
    CellId cell, WorkerId keep, WorkerId to,
    const std::unordered_map<TermId, WorkerId>& term_map) {
  MigrationStats stats;
  std::vector<STSQuery> queries = workers_[keep].ExtractCell(cell);
  index_.SetCellTextRoute(cell, term_map, {keep, to});
  const TermRouter& router = *index_.plan().cells[cell].text;
  const std::vector<CellId> cells{cell};
  for (const auto& q : queries) {
    bool to_keep = false, to_other = false;
    for (const TermId t : q.expr.RoutingTerms(*vocab_)) {
      (router.Route(t) == keep ? to_keep : to_other) = true;
      // The cell just became text-routed: its H2 entries must be rebuilt
      // from the redistributed queries so objects keep reaching them.
      index_.AddH2(cell, t, router.Route(t));
    }
    if (to_keep) workers_[keep].InsertIntoCells(q, cells);
    if (to_other) {
      workers_[to].InsertIntoCells(q, cells);
      stats.queries_moved++;
      stats.bytes += q.MemoryBytes();
    }
  }
  return stats;
}

Cluster::MigrationStats Cluster::MergeCellTo(CellId cell, WorkerId to) {
  MigrationStats stats;
  const CellRoute& route = index_.plan().cells[cell];
  std::vector<WorkerId> sources;
  if (route.IsText()) {
    sources = route.text->workers();
  } else {
    sources.push_back(route.worker);
  }
  const std::vector<CellId> cells{cell};
  for (const WorkerId w : sources) {
    if (w == to) continue;
    stats.bytes += workers_[w].CellMigrationBytes(cell);
    for (const auto& q : workers_[w].ExtractCell(cell)) {
      workers_[to].InsertIntoCells(q, cells);
      stats.queries_moved++;
    }
  }
  index_.SetCellSpaceRoute(cell, to);
  return stats;
}

}  // namespace ps2
