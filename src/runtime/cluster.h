#ifndef PS2_RUNTIME_CLUSTER_H_
#define PS2_RUNTIME_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cost_model.h"
#include "core/query.h"
#include "dispatch/dispatcher.h"
#include "dispatch/gridt_index.h"
#include "dispatch/merger.h"
#include "index/gi2.h"
#include "partition/plan.h"

namespace ps2 {

struct ClusterOptions {
  Gi2Index::Options worker_index;
  size_t merger_window = 1 << 20;
};

// Outcome of moving one cell's queries between workers.
struct MigrationStats {
  size_t queries_moved = 0;
  size_t bytes = 0;
};

// The logical PS2Stream cluster: one routing index (shared by all
// dispatchers), one GI2 per worker, one merger. This class is the
// *synchronous* core — tuples are processed inline — used directly by
// tests, the simulator and the load adjusters; ThreadedEngine runs the same
// cluster across real threads for wall-clock throughput/latency.
class Cluster {
 public:
  Cluster(PartitionPlan plan, const Vocabulary* vocab,
          ClusterOptions options = ClusterOptions());

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Processes one tuple end to end. For objects, newly delivered (deduped)
  // matches are appended to `delivered` when non-null.
  void Process(const StreamTuple& tuple,
               std::vector<MatchResult>* delivered = nullptr);

  // Applies one routed delivery to its worker (updating load tallies and,
  // for objects, pushing matches through the merger). Callers that need
  // per-delivery control (the simulator's service-time accounting) route
  // via dispatcher() themselves and then Apply each delivery.
  void Apply(const StreamTuple& tuple, const Dispatcher::Delivery& delivery,
             std::vector<MatchResult>* delivered = nullptr);

  // --- components ----------------------------------------------------------
  GridtIndex& router() { return index_; }
  const GridtIndex& router() const { return index_; }
  Dispatcher& dispatcher() { return dispatcher_; }
  Merger& merger() { return merger_; }
  Gi2Index& worker(WorkerId w) { return workers_[w]; }
  const Gi2Index& worker(WorkerId w) const { return workers_[w]; }
  const Vocabulary& vocab() const { return *vocab_; }

  // --- load accounting (Definition 1 window) -------------------------------
  const std::vector<WorkerLoadTally>& tallies() const { return tallies_; }
  std::vector<double> WorkerLoads(const CostModel& cm) const;
  // Clears tallies and per-cell object counters (start of a new window).
  void ResetLoadWindow();

  // --- migration primitives (used by the load adjusters) -------------------
  using MigrationStats = ps2::MigrationStats;

  // Moves worker `from`'s share of `cell` to worker `to` (queries + routing).
  MigrationStats MigrateCell(CellId cell, WorkerId from, WorkerId to);

  // Turns the space-routed `cell` (owned by `keep`) into a text-routed cell
  // split by `term_map` across {keep, to}; queries are redistributed.
  // Returns the bytes shipped to `to`.
  MigrationStats TextSplitCell(CellId cell, WorkerId keep, WorkerId to,
                               const std::unordered_map<TermId, WorkerId>&
                                   term_map);

  // Collapses `cell` (text- or space-routed) onto a single worker `to`,
  // moving every other worker's share there.
  MigrationStats MergeCellTo(CellId cell, WorkerId to);

  // --- memory ---------------------------------------------------------------
  size_t DispatcherMemoryBytes() const { return index_.MemoryBytes(); }
  size_t WorkerMemoryBytes(WorkerId w) const {
    return workers_[w].MemoryBytes();
  }

 private:
  const Vocabulary* vocab_;
  GridtIndex index_;
  Dispatcher dispatcher_;
  Merger merger_;
  std::vector<Gi2Index> workers_;
  std::vector<WorkerLoadTally> tallies_;
  std::vector<Dispatcher::Delivery> scratch_deliveries_;
  std::vector<MatchResult> scratch_matches_;
};

}  // namespace ps2

#endif  // PS2_RUNTIME_CLUSTER_H_
