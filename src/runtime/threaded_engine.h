#ifndef PS2_RUNTIME_THREADED_ENGINE_H_
#define PS2_RUNTIME_THREADED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/dedup_window.h"
#include "common/wait_strategy.h"
#include "dispatch/routing_snapshot.h"
#include "runtime/engine.h"

namespace ps2 {

// The wall-clock runtime: real dispatcher and worker threads over one
// Cluster — the measured counterpart of the paper's Storm deployment.
//
// Concurrency story:
//   - Every queue hop is a lock-free SPSC ring (runtime/spsc_ring.h):
//     Submit() round-robins tuples across per-dispatcher input rings, and
//     each worker owns one data ring per dispatcher plus a control ring for
//     the controller's drain markers. Idle stages park through EventCounts
//     per the configured WaitStrategy (block / adaptive-spin / busy-poll).
//   - Object routing is lock-free: dispatcher threads route against the
//     current immutable RoutingSnapshot (one atomic shared_ptr load).
//   - Query inserts/deletes serialize on the SnapshotRouter's writer lock,
//     mutate the master gridt index and incrementally republish the cells
//     they touched.
//   - An *update-ordering gate* keeps routing causally consistent with the
//     submission order: every tuple is stamped with the number of query
//     updates submitted before it, and no tuple routes until that many
//     updates have been enqueued to workers and published. On top of that,
//     each object work item carries a per-worker stamp (that worker's
//     query-items-enqueued count at push time) so the worker never matches
//     an object before applying the updates that preceded it — rings from
//     different dispatchers would otherwise reorder updates vs. objects.
//     A worker that hits an unsatisfied stamp leaves the item at its ring's
//     head and sweeps its other rings; the pending update is always
//     reachable there (a blocked cycle would require an update pushed
//     before itself), so the stall resolves without spinning.
//   - The match path is merger-free: each worker deduplicates its fresh
//     matches through the delivery router's sharded (query, object) window
//     (or an engine-local one when no router is wired) and delivers
//     straight to the subscriber sessions — no cross-worker serialization
//     point. EngineOptions::merger_audit additionally replays every match
//     through the classic merger and counts disagreements, as an
//     equivalence audit.
//   - The optional controller thread runs the LoadController against live
//     per-worker tallies. Migrations install live: query copies are placed
//     at the destination first, the post-migration routing table is built
//     off-thread and swapped in atomically, drain markers flush the
//     source's in-flight rings, and only then are the stale source copies
//     removed — no delivery is lost, transient duplicates die in the
//     delivery-router window.
class ThreadedEngine : public Engine {
 public:
  explicit ThreadedEngine(Cluster& cluster,
                          EngineOptions options = EngineOptions());
  ~ThreadedEngine() override;

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  std::string name() const override { return "threaded"; }

  // Start + paced Submit of the whole stream + Stop.
  RunReport Run(const std::vector<StreamTuple>& input) override;

  // --- async facade (PS2Stream::Start/Stop build on these) ------------------
  // Spawns dispatcher, worker and (if configured) controller threads.
  void Start();
  // Enqueues one tuple; blocks under backpressure. Single producer. Returns
  // false once the engine stopped. `publish_us` is the publish timestamp
  // delivery latency is measured from; 0 (the default) stamps the current
  // time — the shard fabric passes the front-end's stamp through so the
  // metric covers the whole cross-shard path.
  bool Submit(const StreamTuple& tuple, int64_t publish_us = 0);
  // Blocks until everything submitted before this call is fully processed:
  // routed by the dispatchers, applied by the workers, and (for matches)
  // handed to the delivery sink. The engine keeps running. Must be called
  // from the submitting thread (single producer — a concurrent Submit would
  // make "everything submitted before" a moving target); safe against the
  // controller thread. The shard fabric's cross-shard migration uses this
  // as its drain barrier before removing a migrated cell's source copies.
  void Quiesce();
  // Drains in-flight work, joins all threads and reports the run.
  RunReport Stop();
  // Hard stop: tears the engine down *without* draining — queued tuples are
  // discarded, no report is assembled. This models a crash for the
  // durability subsystem (recovery must reconstruct everything from the WAL
  // and checkpoints alone); threads are still joined so the process stays
  // sane.
  void Abort();
  bool running() const { return running_; }

  // --- introspection --------------------------------------------------------
  std::shared_ptr<const RoutingSnapshot> routing_snapshot() const {
    return router_.Current();
  }
  // Consistent copy of the live routing plan (H1 + installed migrations),
  // taken under the routing writer lock; the facade checkpoints through
  // this.
  PartitionPlan PlanCopy() { return router_.PlanCopy(); }
  // Valid after Start(); survives Stop() for post-run inspection. The
  // controller's own totals are only safe to read after Stop()/Abort()
  // joined the controller thread; while running, poll
  // migrations_installed() instead.
  const LoadController* controller() const { return controller_.get(); }
  // Number of controller checks that installed (and published) migrations,
  // readable from any thread while the engine runs.
  uint64_t migrations_installed() const {
    return migrations_installed_.load(std::memory_order_relaxed);
  }
  // Live aggregate occupancy of the per-worker SPSC data rings: queued
  // items and total capacity summed over every ring. The overload
  // controller's data-plane pressure signal. Safe from the submitting
  // thread while the engine runs (ring cursors are atomics); zeros when
  // stopped.
  void DataPlaneFill(uint64_t* pending, uint64_t* capacity) const;

  // Matches accepted by the dedup window (requires options.collect_matches).
  std::vector<MatchResult> TakeMatches();
  // Allocation-reusing variant: swaps the collected matches into `out`
  // (cleared first), so a draining consumer reuses capacity across calls.
  void TakeMatches(std::vector<MatchResult>* out);

 private:
  struct Latch;
  struct WorkItem;
  struct SeqTuple;
  struct WorkerState;
  struct DispatcherState;
  class LiveMigrationExecutor;

  void DispatchLoop(DispatcherState& ds);
  void RouteOne(DispatcherState& ds, SeqTuple& st, WaitContext& push_wait);
  void WorkerLoop(int w);
  void ControllerLoop();
  void ControllerCheck();
  // Shared Stop()/Abort() teardown: stops the controller first (so no
  // drain marker races the ring close), then closes and joins the
  // dispatcher and worker stages in pipeline order.
  void JoinAll();
  RunReport AssembleReport();

  Cluster& cluster_;
  EngineOptions options_;
  SnapshotRouter router_;
  std::unique_ptr<LoadController> controller_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<DispatcherState>> dispatchers_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::thread> dispatcher_threads_;
  std::thread controller_thread_;

  // Fallback (query, object) dedup window used when no delivery router is
  // wired (bench/test engines); with a router, dedup lives in the router so
  // synchronous and threaded traffic share one window.
  std::unique_ptr<ShardedDedupWindow> dedup_;

  // Update-ordering gate (see class comment).
  std::atomic<uint64_t> updates_submitted_{0};
  std::atomic<uint64_t> updates_published_{0};
  // Query updates routed but whose deliveries are not yet all enqueued;
  // part of the controller's migration barrier.
  std::atomic<int> update_pushes_{0};
  std::atomic<uint64_t> migrations_installed_{0};
  std::atomic<uint64_t> audit_mismatches_{0};

  // Submit-side state (single producer).
  uint64_t submitted_objects_ = 0;
  uint64_t submitted_inserts_ = 0;
  uint64_t submitted_deletes_ = 0;
  // Tuples pushed per dispatcher; paired with each dispatcher's
  // tuples_routed counter by Quiesce(). Plain (submit thread only).
  std::vector<uint64_t> submit_pushed_;
  size_t submit_rr_ = 0;
  WaitContext submit_wait_{WaitStrategy::kBlocking};

  std::mutex merge_mu_;
  std::vector<MatchResult> collected_;

  std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;
  bool ctl_stop_ = false;
  uint64_t last_check_tuples_ = 0;

  // Atomic: the facade's producer thread may call Submit()/running() while
  // another thread drives Stop().
  std::atomic<bool> running_{false};
  // Set by Abort(): dispatcher and worker loops drop items instead of
  // processing them so teardown is immediate.
  std::atomic<bool> discard_{false};
  int64_t start_us_ = 0;
  double wall_seconds_ = 0.0;
};

}  // namespace ps2

#endif  // PS2_RUNTIME_THREADED_ENGINE_H_
