#include "runtime/ps2stream.h"

#include "partition/plan.h"

namespace ps2 {

PS2Stream::PS2Stream(PS2StreamOptions options)
    : options_(std::move(options)) {
  LoadControllerConfig config;
  config.adjust = options_.adjust;
  controller_ = std::make_unique<LoadController>(config);
}

PS2Stream::~PS2Stream() {
  if (started()) engine_->Stop();
}

void PS2Stream::Bootstrap(const WorkloadSample& sample) {
  AccumulateVocabularyCounts(sample, vocab_);
  auto partitioner = MakePartitioner(options_.partitioner);
  PartitionPlan plan;
  if (partitioner != nullptr && !sample.empty()) {
    plan = partitioner->Build(sample, vocab_, options_.partition);
  } else {
    // No sample (or unknown partitioner): uniform grid assignment so the
    // service still works; the first global adjustment can fix it later.
    plan.grid = GridSpec(sample.empty() ? Rect(0, 0, 1, 1) : sample.Bounds(),
                         options_.partition.grid_k);
    plan.num_workers = options_.partition.num_workers;
    plan.cells.resize(plan.grid.NumCells());
    for (CellId c = 0; c < plan.grid.NumCells(); ++c) {
      plan.cells[c].worker =
          static_cast<WorkerId>(c % options_.partition.num_workers);
    }
  }
  cluster_ = std::make_unique<Cluster>(std::move(plan), &vocab_,
                                       options_.cluster);
}

void PS2Stream::Start() {
  if (!bootstrapped() || started()) return;
  EngineOptions opts = options_.engine;
  opts.window_capacity = options_.window_capacity;
  if (options_.auto_adjust) {
    opts.controller.enabled = true;
    opts.controller.config.adjust = options_.adjust;
    opts.controller.min_tuples = options_.adjust_check_interval;
  }
  engine_ = std::make_unique<ThreadedEngine>(*cluster_, opts);
  engine_->Start();
}

RunReport PS2Stream::Stop() {
  if (!started()) return RunReport{};
  return engine_->Stop();
}

QueryId PS2Stream::Subscribe(const std::string& expression,
                             const Rect& region) {
  BoolExpr expr = BoolExpr::Parse(expression, vocab_);
  if (expr.has_error() || expr.empty()) return 0;
  STSQuery q;
  q.id = next_query_id_++;
  q.expr = std::move(expr);
  q.region = region;
  Subscribe(q);
  return q.id;
}

void PS2Stream::Subscribe(const STSQuery& query) {
  subscriptions_[query.id] = query;
  next_query_id_ = std::max(next_query_id_, query.id + 1);
  const StreamTuple tuple = StreamTuple::OfInsert(query);
  if (started()) {
    engine_->Submit(tuple);
    return;
  }
  cluster_->Process(tuple);
  Track(tuple);
}

void PS2Stream::Unsubscribe(QueryId id) {
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  const StreamTuple tuple = StreamTuple::OfDelete(it->second);
  subscriptions_.erase(it);
  if (started()) {
    engine_->Submit(tuple);
    return;
  }
  cluster_->Process(tuple);
  Track(tuple);
}

std::vector<MatchResult> PS2Stream::Publish(Point loc,
                                            const std::string& text) {
  SpatioTextualObject o = SpatioTextualObject::FromText(
      next_object_id_++, loc, text, vocab_, tokenizer_);
  for (const TermId t : o.terms) vocab_.AddCount(t);
  return Publish(o);
}

std::vector<MatchResult> PS2Stream::Publish(
    const SpatioTextualObject& object) {
  next_object_id_ = std::max(next_object_id_, object.id + 1);
  const StreamTuple tuple = StreamTuple::OfObject(object);
  if (started()) {
    engine_->Submit(tuple);
    return {};
  }
  std::vector<MatchResult> delivered;
  cluster_->Process(tuple, &delivered);
  Track(tuple);
  return delivered;
}

void PS2Stream::Track(const StreamTuple& tuple) {
  if (!options_.auto_adjust) return;
  window_.push_back(tuple);
  if (window_.size() > options_.window_capacity) window_.pop_front();
  if (++tuples_since_check_ >= options_.adjust_check_interval) {
    tuples_since_check_ = 0;
    MaybeAutoAdjust();
  }
}

void PS2Stream::MaybeAutoAdjust() {
  WorkloadSample sample;
  for (const auto& t : window_) {
    switch (t.kind) {
      case TupleKind::kObject:
        sample.objects.push_back(t.object);
        break;
      case TupleKind::kQueryInsert:
        sample.inserts.push_back(t.query);
        break;
      case TupleKind::kQueryDelete:
        sample.deletes.push_back(t.query);
        break;
    }
  }
  AdjustReport report = controller_->Check(*cluster_, sample);
  if (report.triggered) {
    adjustments_.push_back(std::move(report));
    cluster_->ResetLoadWindow();
  }
}

}  // namespace ps2
