#include "runtime/ps2stream.h"

#include <algorithm>
#include <filesystem>

#include "adjust/touch_tracking_executor.h"
#include "common/stopwatch.h"
#include "partition/plan.h"

namespace ps2 {

namespace {

// Gathers the per-shard option subset the fabric consumes out of the
// facade's option block.
ShardedEngineConfig FabricConfig(const PS2StreamOptions& options) {
  ShardedEngineConfig config;
  config.fabric = options.sharding;
  config.partitioner = options.partitioner;
  config.partition = options.partition;
  config.cluster = options.cluster;
  config.engine = options.engine;
  config.engine.window_capacity = options.window_capacity;
  config.durability = options.durability;
  return config;
}

}  // namespace

PS2Stream::PS2Stream(PS2StreamOptions options)
    : options_(std::move(options)),
      delivery_(std::make_unique<DeliveryRouter>()),
      quota_(options_.quota),
      overload_(options_.overload),
      alive_(std::make_shared<int>(0)) {
  LoadControllerConfig config;
  config.adjust = options_.adjust;
  controller_ = std::make_unique<LoadController>(config);
  // Top-k admission sits between the router's dedup window and the
  // sessions; with no top-k subscriptions registered it is one relaxed
  // atomic load per batch.
  delivery_->SetTopK(&topk_);
}

PS2Stream::~PS2Stream() {
  // The exporter thread snapshots live facade state; stop it before any of
  // that state starts tearing down.
  StopMetricsExporter();
  // Invalidate RAII Subscription handles first: a handle destroyed (on
  // this thread) after this point no-ops instead of re-entering a dying
  // facade. The token orders handle-vs-facade *destruction order*, not
  // cross-thread teardown — like the rest of the control plane, handles
  // and the facade must be destroyed from one thread.
  alive_.reset();
  // Through Stop(), not engine_->Stop(): the facade variant puts sessions
  // into draining mode first, so a worker parked on a full kBlock session
  // cannot wedge the join.
  if (started()) Stop();
}

void PS2Stream::Bootstrap(const WorkloadSample& sample) {
  AccumulateVocabularyCounts(sample, vocab_);
  if (options_.sharding.num_shards > 1) {
    // Multi-shard mode: the fabric owns plan building, the engine fleet and
    // per-shard durability; the facade keeps the vocabulary, the delivery
    // router and the subscription registry — the client API is unchanged.
    fabric_ = std::make_unique<ShardedEngine>(FabricConfig(options_),
                                              &vocab_, delivery_.get());
    fabric_->Bootstrap(sample);
    return;
  }
  auto partitioner = MakePartitioner(options_.partitioner);
  PartitionPlan plan;
  if (partitioner != nullptr && !sample.empty()) {
    plan = partitioner->Build(sample, vocab_, options_.partition);
  } else {
    // No sample (or unknown partitioner): uniform grid assignment so the
    // service still works; the first global adjustment can fix it later.
    plan.grid = GridSpec(sample.empty() ? Rect(0, 0, 1, 1) : sample.Bounds(),
                         options_.partition.grid_k);
    plan.num_workers = options_.partition.num_workers;
    plan.cells.resize(plan.grid.NumCells());
    for (CellId c = 0; c < plan.grid.NumCells(); ++c) {
      plan.cells[c].worker =
          static_cast<WorkerId>(c % options_.partition.num_workers);
    }
  }
  cluster_ = std::make_unique<Cluster>(std::move(plan), &vocab_,
                                       options_.cluster);
  if (options_.durability.enabled && !options_.durability.dir.empty()) {
    // The bootstrap state (vocab + plan, no queries yet) is recovery point
    // zero; every later mutation reaches the WAL before it takes effect.
    durability_ = std::make_unique<DurabilityManager>(options_.durability);
    CheckpointView view;
    view.next_query_id = next_query_id_;
    view.next_object_id = next_object_id_;
    view.vocab = &vocab_;
    const PartitionPlan& current = cluster_->router().plan();
    view.plan = &current;
    std::shared_ptr<const RoutingSnapshot> snapshot;
    if (options_.durability.include_snapshot) {
      SnapshotRouter router(&cluster_->router());
      snapshot = router.Current();
      view.snapshot = snapshot.get();
    }
    if (!durability_->Initialize(view)) durability_.reset();
  }
}

bool PS2Stream::Restore(const std::string& dir) {
  if (bootstrapped()) return false;
  DurabilityConfig config = options_.durability;
  if (!dir.empty()) config.dir = dir;
  if (config.dir.empty()) return false;
  config.enabled = true;

  // A SHARDMAP file marks the directory as a fabric root; restore then
  // reassembles the whole fleet (the shard count comes from the file, not
  // the options, so a facade configured for 1 shard still restores an
  // N-shard directory correctly).
  if (std::filesystem::exists(ShardMapPath(config.dir))) {
    PS2StreamOptions fabric_options = options_;
    fabric_options.durability = config;
    auto fabric = std::make_unique<ShardedEngine>(
        FabricConfig(fabric_options), &vocab_, delivery_.get());
    ShardedEngine::Recovery recovery;
    if (!fabric->Restore(config.dir, &recovery)) {
      vocab_ = Vocabulary();
      return false;
    }
    fabric_ = std::move(fabric);
    subscriptions_.clear();
    for (const STSQuery& q : recovery.queries) {
      subscriptions_[q.id] = q;
      if (q.cls == SubscriptionClass::kTopK) topk_.Register(q.id, q.k);
      // Quota charges are runtime state, not persisted: recovered
      // subscriptions re-charge against the default tenant (attribution is
      // lost across a crash) and are never rejected.
      quota_.ChargeRestored(q.id, std::string());
    }
    live_subscriptions_.store(subscriptions_.size(),
                              std::memory_order_relaxed);
    topk_.Restore(recovery.topk);
    next_query_id_ = recovery.next_query_id;
    next_object_id_ = recovery.next_object_id;
    options_.durability = config;
    return true;
  }

  auto state = std::make_unique<RecoveredState>();
  if (!RecoverState(config.dir, state.get())) return false;

  vocab_ = std::move(state->vocab);
  cluster_ = std::make_unique<Cluster>(state->plan, &vocab_,
                                       options_.cluster);
  next_query_id_ = state->next_query_id;
  next_object_id_ = state->next_object_id;
  subscriptions_.clear();
  for (const STSQuery& q : state->queries) {
    subscriptions_[q.id] = q;
    if (q.cls == SubscriptionClass::kTopK) topk_.Register(q.id, q.k);
    quota_.ChargeRestored(q.id, std::string());
    // Re-inserting through the recovered plan rebuilds the gridt H2 entries
    // and the per-worker GI2 indexes in one pass.
    cluster_->Process(StreamTuple::OfInsert(q));
  }
  live_subscriptions_.store(subscriptions_.size(), std::memory_order_relaxed);
  // Heap state restores after registration (Restore drops entries of
  // queries that are no longer live — e.g. unsubscribed after the
  // checkpoint and replayed from the WAL).
  topk_.Restore(state->topk);
  cluster_->ResetLoadWindow();

  durability_ = std::make_unique<DurabilityManager>(config);
  // Resume logging on the *last* segment of the replayed chain, not the
  // committed checkpoint's: a crash between WAL rotation and checkpoint
  // commit leaves an orphan later segment, and appending to an earlier one
  // would let the next recovery's LSN high-water filter the orphan's
  // records out.
  const uint64_t resume_seq =
      state->checkpoint_seq +
      (state->wal_segments > 0
           ? static_cast<uint64_t>(state->wal_segments) - 1
           : 0);
  if (!durability_->Resume(resume_seq, state->last_lsn + 1)) {
    // Recovery loaded but logging cannot continue: succeeding here would
    // leave a service that silently loses every post-restore mutation.
    // Fail wholesale; the caller keeps a virgin instance.
    durability_.reset();
    cluster_.reset();
    for (const auto& [id, q] : subscriptions_) quota_.Refund(id);
    live_subscriptions_.store(0, std::memory_order_relaxed);
    subscriptions_.clear();
    vocab_ = Vocabulary();
    next_query_id_ = 1;
    next_object_id_ = 1;
    return false;
  }
  options_.durability = config;
  recovered_ = std::move(state);
  return true;
}

bool PS2Stream::Checkpoint() {
  if (fabric_ != nullptr) {
    const TopKCheckpoint topk_cp = topk_.Checkpoint();
    return fabric_->Checkpoint(next_query_id_, next_object_id_, &topk_cp);
  }
  if (durability_ == nullptr || !bootstrapped()) return false;
  const uint64_t seq = durability_->BeginCheckpoint();
  if (seq == 0) return false;
  return CommitCheckpointLocked(seq);
}

bool PS2Stream::CommitCheckpointLocked(uint64_t seq) {
  // Ordering matters: the WAL was already rotated (BeginCheckpoint), so any
  // migration the controller installs from here on lands in the new
  // segment; the plan copy below is taken under the routing writer lock and
  // therefore sees every migration journaled to the *old* segment. Either
  // way nothing is lost, and replaying an already-captured route is
  // idempotent.
  CheckpointView view;
  view.next_query_id = next_query_id_;
  view.next_object_id = next_object_id_;
  view.vocab = &vocab_;
  PartitionPlan plan = started() ? engine_->PlanCopy()
                                 : cluster_->router().plan();
  view.plan = &plan;
  std::shared_ptr<const RoutingSnapshot> snapshot;
  std::unique_ptr<SnapshotRouter> sync_router;
  if (options_.durability.include_snapshot) {
    if (started()) {
      snapshot = engine_->routing_snapshot();
    } else {
      sync_router = std::make_unique<SnapshotRouter>(&cluster_->router());
      snapshot = sync_router->Current();
    }
    view.snapshot = snapshot.get();
  }
  view.queries.reserve(subscriptions_.size());
  for (const auto& [id, q] : subscriptions_) view.queries.push_back(&q);
  const TopKCheckpoint topk_cp = topk_.Checkpoint();
  view.topk = &topk_cp;
  return durability_->CommitCheckpoint(seq, std::move(view));
}

void PS2Stream::MaybeCheckpoint() {
  if (fabric_ != nullptr) {
    if (fabric_->ShouldCheckpoint()) Checkpoint();
    return;
  }
  if (durability_ != nullptr && durability_->ShouldCheckpoint()) {
    Checkpoint();
  }
}

void PS2Stream::Kill() {
  // A crash tears sessions down with the process: release any worker
  // blocked on a full kBlock queue so Abort() can join the threads.
  delivery_->SetDraining(true);
  if (fabric_ != nullptr) fabric_->Kill();
  if (engine_ != nullptr && engine_->running()) engine_->Abort();
  engine_.reset();
  // Abandon, not Close: a graceful close would flush the WAL's pending
  // batch, making the "crash" more durable than the sync mode guaranteed.
  if (durability_ != nullptr) durability_->Abandon();
  durability_.reset();
  killed_ = true;
  // The in-memory cluster and subscription map are left readable for
  // post-mortem inspection (tests compare them against what recovery
  // reconstructs), but the service must not be used again.
}

void PS2Stream::Start() {
  if (!bootstrapped() || started()) return;
  if (fabric_ != nullptr) {
    fabric_->Start();
    return;
  }
  EngineOptions opts = options_.engine;
  opts.window_capacity = options_.window_capacity;
  if (options_.auto_adjust) {
    opts.controller.enabled = true;
    opts.controller.config.adjust = options_.adjust;
    opts.controller.min_tuples = options_.adjust_check_interval;
  }
  if (durability_ != nullptr) opts.wal = &durability_->wal();
  opts.delivery = delivery_.get();
  engine_ = std::make_unique<ThreadedEngine>(*cluster_, opts);
  engine_->Start();
}

RunReport PS2Stream::Stop() {
  if (!started()) return RunReport{};
  // Drain mode: from here until the engine is down, a full kBlock session
  // drops instead of blocking the worker that delivers to it — otherwise a
  // consumer that stopped pulling would park a worker thread forever and
  // Stop() could never join it.
  delivery_->SetDraining(true);
  RunReport report =
      fabric_ != nullptr ? fabric_->Stop() : engine_->Stop();
  delivery_->SetDraining(false);
  const SessionStats sessions = delivery_->AggregateStats();
  report.session_deliveries = sessions.delivered;
  report.session_drops = sessions.dropped;
  report.matches_unrouted = delivery_->unrouted();
  report.delivery_latency = sessions.latency;
  report.quota_rejections = quota_.rejections();
  report.rate_limited = quota_.rate_limited();
  report.overload_trips = overload_.trips();
  report.overload_sheds = overload_.sheds();
  report.live_subscriptions =
      live_subscriptions_.load(std::memory_order_relaxed);
  {
    // Base layer for MetricsSnapshot(): the engine-internal counters (ring
    // highwaters, migrations, fault tallies) are only assembled here.
    std::lock_guard<std::mutex> lock(report_mu_);
    last_report_ = report;
  }
  return report;
}

// --- client API --------------------------------------------------------------

PS2Stream::SessionPtr PS2Stream::OpenSession(SessionOptions options) {
  auto session = std::make_shared<SubscriberSession>(options);
  delivery_->RegisterSession(session);
  return session;
}

StatusOr<Subscription> PS2Stream::Subscribe(const SessionPtr& session,
                                            const std::string& expression,
                                            const Rect& region) {
  if (killed_) return Status::Unavailable("service was killed");
  if (!bootstrapped()) {
    return Status::FailedPrecondition(
        "Bootstrap() or Restore() must succeed before Subscribe");
  }
  std::string parse_error;
  BoolExpr expr = BoolExpr::Parse(expression, vocab_, &parse_error);
  if (expr.has_error()) {
    return Status::InvalidArgument("expression \"" + expression +
                                   "\": " + parse_error);
  }
  if (expr.empty()) {
    return Status::InvalidArgument("expression \"" + expression +
                                   "\" has no keywords");
  }
  if (const Status gate = DurabilityGate(); !gate.ok()) return gate;
  STSQuery q;
  q.id = next_query_id_++;
  q.expr = std::move(expr);
  q.region = region;
  if (const Status st = ApplySubscribe(q, session); !st.ok()) return st;
  return Subscription(q.id, this, alive_);
}

StatusOr<Subscription> PS2Stream::Subscribe(const SessionPtr& session,
                                            const STSQuery& query) {
  if (killed_) return Status::Unavailable("service was killed");
  if (!bootstrapped()) {
    return Status::FailedPrecondition(
        "Bootstrap() or Restore() must succeed before Subscribe");
  }
  if (query.id == 0) {
    return Status::InvalidArgument("query id 0 is reserved");
  }
  if (query.expr.empty()) {
    return Status::InvalidArgument("query has an empty expression");
  }
  if (subscriptions_.count(query.id) != 0) {
    return Status::AlreadyExists("query id " + std::to_string(query.id) +
                                 " is already subscribed");
  }
  if (const Status st = ValidateQuerySpec(query); !st.ok()) return st;
  if (const Status gate = DurabilityGate(); !gate.ok()) return gate;
  if (const Status st = ApplySubscribe(query, session); !st.ok()) return st;
  return Subscription(query.id, this, alive_);
}

StatusOr<Subscription> PS2Stream::Subscribe(const SessionPtr& session,
                                            const SubscriptionSpec& spec) {
  if (killed_) return Status::Unavailable("service was killed");
  if (!bootstrapped()) {
    return Status::FailedPrecondition(
        "Bootstrap() or Restore() must succeed before Subscribe");
  }
  STSQuery q;
  if (const Status st = CompileSpec(spec, vocab_, &q); !st.ok()) return st;
  if (const Status gate = DurabilityGate(); !gate.ok()) return gate;
  q.id = next_query_id_++;
  if (const Status st = ApplySubscribe(q, session); !st.ok()) return st;
  return Subscription(q.id, this, alive_);
}

Status PS2Stream::UpdateSubscription(QueryId id, const Rect& new_region) {
  if (killed_) return Status::Unavailable("service was killed");
  if (!bootstrapped()) {
    return Status::FailedPrecondition(
        "Bootstrap() or Restore() must succeed before UpdateSubscription");
  }
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return Status::NotFound("no live subscription with id " +
                            std::to_string(id));
  }
  if (const Status gate = DurabilityGate(); !gate.ok()) return gate;
  const STSQuery old_query = it->second;
  STSQuery new_query = old_query;
  new_query.region = new_region;
  return ApplyUpdate(old_query, new_query);
}

Status PS2Stream::Cancel(QueryId id) {
  if (killed_) return Status::Unavailable("service was killed");
  if (subscriptions_.find(id) == subscriptions_.end()) {
    return Status::NotFound("no live subscription with id " +
                            std::to_string(id));
  }
  return ApplyUnsubscribe(id);
}

void PS2Stream::CancelSubscription(QueryId id) {
  if (killed_) return;
  ApplyUnsubscribe(id);
}

Status PS2Stream::Post(Point loc, const std::string& text) {
  return Post(std::string(), loc, text);
}

Status PS2Stream::Post(const SpatioTextualObject& object) {
  return Post(std::string(), object);
}

Status PS2Stream::Post(const std::string& tenant, Point loc,
                       const std::string& text) {
  if (killed_) return Status::Unavailable("service was killed");
  if (!bootstrapped()) {
    return Status::FailedPrecondition(
        "Bootstrap() or Restore() must succeed before Post");
  }
  // Rate-limit before the object is built: a rejected publish must not
  // consume an object id or touch the vocabulary frequency profile.
  if (Status st = quota_.AdmitPublish(tenant, NowMicros()); !st.ok()) {
    return st;
  }
  SpatioTextualObject o;
  if (started()) {
    // Routing threads read the vocabulary lock-free while the data plane
    // runs, so a live Post must not grow or recount it: tokens the
    // vocabulary has never seen are dropped (a TermId that exists nowhere
    // cannot appear in any subscription expression, so no match outcome
    // changes) and the frequency profile stays frozen at its pre-Start
    // state.
    std::vector<TermId> ids;
    for (const auto& tok : tokenizer_.Tokenize(text)) {
      const TermId t = vocab_.Lookup(tok);
      if (t != kInvalidTerm) ids.push_back(t);
    }
    o = SpatioTextualObject::FromTerms(next_object_id_++, loc,
                                       std::move(ids));
  } else {
    o = SpatioTextualObject::FromText(next_object_id_++, loc, text, vocab_,
                                      tokenizer_);
    for (const TermId t : o.terms) vocab_.AddCount(t);
  }
  return PostInternal(o);
}

Status PS2Stream::Post(const std::string& tenant,
                       const SpatioTextualObject& object) {
  if (killed_) return Status::Unavailable("service was killed");
  if (!bootstrapped()) {
    return Status::FailedPrecondition(
        "Bootstrap() or Restore() must succeed before Post");
  }
  if (Status st = quota_.AdmitPublish(tenant, NowMicros()); !st.ok()) {
    return st;
  }
  return PostInternal(object);
}

Status PS2Stream::PostInternal(const SpatioTextualObject& object) {
  if (const Status gate = DurabilityGate(); !gate.ok()) return gate;
  // Overload sampling rides the publish path (every check_interval admitted
  // posts) so pressure is observed exactly when it is being generated.
  if (overload_.ShouldSample()) SampleOverload();
  next_object_id_ = std::max(next_object_id_, object.id + 1);
  // Event time moves first, exactly like the reference matcher: expiries
  // (and the promotions they cause) land before this object's own matches.
  AdvanceWatermark(object.timestamp_us);
  if (fabric_ != nullptr) {
    // The fabric routes the object to its cell's owner shard and carries
    // this publish stamp through the wire, so delivery latency covers the
    // whole cross-shard path. kUnavailable when the owner shard is
    // quarantined (degraded mode).
    return fabric_->Post(object, NowMicros());
  }
  const StreamTuple tuple = StreamTuple::OfObject(object);
  if (started()) {
    // The engine stamps the publish time at Submit and its workers deliver
    // to the routed sessions through the router's dedup window.
    if (!engine_->Submit(tuple)) {
      return Status::Unavailable("engine stopped while submitting");
    }
    return Status::Ok();
  }
  const int64_t publish_us = NowMicros();
  std::vector<MatchResult> fresh;
  cluster_->Process(tuple, &fresh);
  // Gate on the router's window even though the cluster's merger already
  // deduplicated: the router window is the one the started-mode workers
  // filter through, so sharing it here keeps a facade that alternates
  // between modes from re-delivering a pair across the transition.
  for (const auto& m : fresh) {
    if (delivery_->AcceptFresh(m.query_id, m.object_id)) {
      delivery_->Deliver(m, publish_us);
    }
  }
  Track(tuple);
  return Status::Ok();
}

Status PS2Stream::ApplySubscribe(const STSQuery& query,
                                 const SessionPtr& session) {
  // Admission control first — every Subscribe overload funnels through
  // here, so shedding and quotas cannot be bypassed. While the overload
  // controller is degraded, new subscriptions are refused outright (the
  // load that tripped it must drain before the working set may grow).
  if (overload_.shed_subscribes()) {
    overload_.CountShed();
    return Status::ResourceExhausted(
        "overload: subscribe rejected while degraded (queue fill above "
        "overload.high_watermark)");
  }
  if (Status st = quota_.ChargeSubscribe(
          query.id, session != nullptr ? session->options().tenant : "",
          session != nullptr ? session->uid() : 0);
      !st.ok()) {
    return st;
  }
  // Arm top-k admission before any path can index the query: a candidate
  // produced the instant the insert applies must find its state.
  if (query.cls == SubscriptionClass::kTopK) {
    topk_.Register(query.id, query.k);
  }
  if (fabric_ != nullptr) {
    subscriptions_[query.id] = query;
    next_query_id_ = std::max(next_query_id_, query.id + 1);
    // Route before any shard can index the query, same as below.
    if (session != nullptr) delivery_->Route(query.id, session);
    // Per-shard WAL-before-apply happens inside: every shard journals the
    // insert to its own log before indexing it. A quarantined owner bounces
    // the whole subscription (the fabric rolled its side back already).
    const Status st = fabric_->Subscribe(query);
    if (!st.ok()) {
      subscriptions_.erase(query.id);
      delivery_->Unroute(query.id);
      topk_.Forget(query.id);
      quota_.Refund(query.id);
      return st;
    }
    live_subscriptions_.fetch_add(1, std::memory_order_relaxed);
    MaybeCheckpoint();
    return Status::Ok();
  }
  // WAL-before-apply: once the append returns (durable per the configured
  // sync mode), a crash at any later point recovers this subscription.
  if (durability_ != nullptr) {
    durability_->wal().AppendSubscribe(query, vocab_);
  }
  subscriptions_[query.id] = query;
  next_query_id_ = std::max(next_query_id_, query.id + 1);
  // Route deliveries before the insert can reach a worker: a match can only
  // be produced after the insert is applied, so the session never misses
  // one.
  if (session != nullptr) delivery_->Route(query.id, session);
  live_subscriptions_.fetch_add(1, std::memory_order_relaxed);
  const StreamTuple tuple = StreamTuple::OfInsert(query);
  if (started()) {
    engine_->Submit(tuple);
    MaybeCheckpoint();
    return Status::Ok();
  }
  cluster_->Process(tuple);
  Track(tuple);
  MaybeCheckpoint();
  return Status::Ok();
}

Status PS2Stream::ApplyUnsubscribe(QueryId id) {
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return Status::Ok();
  // Release the quota charge the moment the subscription stops being live —
  // a tenant at its limit can Cancel one subscription and immediately admit
  // another.
  quota_.Refund(id);
  live_subscriptions_.fetch_sub(1, std::memory_order_relaxed);
  if (fabric_ != nullptr) {
    subscriptions_.erase(it);
    delivery_->Unroute(id);
    topk_.Forget(id);
    // Copies at quarantined shards die with the shard; only a fleet-wide
    // outage of the owners reports kUnavailable.
    const Status st = fabric_->Unsubscribe(id);
    MaybeCheckpoint();
    return st;
  }
  if (durability_ != nullptr) {
    durability_->wal().AppendUnsubscribe(id);
  }
  const StreamTuple tuple = StreamTuple::OfDelete(it->second);
  subscriptions_.erase(it);
  // Unroute immediately: no delivery reaches the session after Unsubscribe
  // returns. A match already in flight in the started engine lands in the
  // router's `unrouted` counter instead.
  delivery_->Unroute(id);
  topk_.Forget(id);
  if (started()) {
    engine_->Submit(tuple);
    MaybeCheckpoint();
    return Status::Ok();
  }
  cluster_->Process(tuple);
  Track(tuple);
  MaybeCheckpoint();
  return Status::Ok();
}

Status PS2Stream::ApplyUpdate(const STSQuery& old_query,
                              const STSQuery& new_query) {
  if (fabric_ != nullptr) {
    subscriptions_[new_query.id] = new_query;
    // The fabric journals the update per shard (WAL-before-apply inside)
    // and routes kQueryUpdate / insert / delete frames by old-vs-new owner
    // membership. A quarantined target bounces the whole update.
    const Status st = fabric_->Update(old_query, new_query);
    if (!st.ok()) {
      subscriptions_[old_query.id] = old_query;
      return st;
    }
    MaybeCheckpoint();
    return Status::Ok();
  }
  if (durability_ != nullptr) {
    durability_->wal().AppendUpdate(new_query, vocab_);
  }
  subscriptions_[new_query.id] = new_query;
  // Delete-then-insert with the same id: the delete drains the old cells'
  // postings (a same-id insert would bind the live slot instead of a fresh
  // one), the insert indexes the new region. Both ride the query-update
  // path — dispatcher-pinned FIFO rings in started mode — so the pair can
  // never reorder against itself or later updates. The session route and
  // any held top-k results are untouched.
  const StreamTuple del = StreamTuple::OfDelete(old_query);
  const StreamTuple ins = StreamTuple::OfInsert(new_query);
  if (started()) {
    engine_->Submit(del);
    engine_->Submit(ins);
    MaybeCheckpoint();
    return Status::Ok();
  }
  cluster_->Process(del);
  cluster_->Process(ins);
  Track(del);
  Track(ins);
  MaybeCheckpoint();
  return Status::Ok();
}

void PS2Stream::AdvanceWatermark(int64_t watermark_us) {
  if (!topk_.active()) return;
  std::vector<Delivery> promoted;
  topk_.AdvanceWatermark(watermark_us, &promoted);
  for (const Delivery& d : promoted) delivery_->DeliverAdmitted(d);
}

void PS2Stream::AdvanceEventTime(int64_t watermark_us) {
  if (killed_) return;
  AdvanceWatermark(watermark_us);
}

Status PS2Stream::DurabilityGate() const {
  if (fabric_ != nullptr) return fabric_->durability_status();
  if (durability_ != nullptr && !durability_->healthy()) {
    return Status::DataLoss(
        "WAL hit a sticky I/O error; mutations would not survive a crash");
  }
  return Status::Ok();
}

Status PS2Stream::Health() {
  if (killed_) return Status::Unavailable("service was killed");
  if (!bootstrapped()) {
    return Status::FailedPrecondition(
        "Bootstrap() or Restore() must succeed before Health");
  }
  if (fabric_ != nullptr) return fabric_->CheckHealth();
  return DurabilityGate();
}

void PS2Stream::SampleOverload() {
  uint64_t session_pending = 0, session_capacity = 0;
  delivery_->QueueDepth(&session_pending, &session_capacity);
  uint64_t ring_pending = 0, ring_capacity = 0;
  if (fabric_ != nullptr) {
    fabric_->DataPlaneFill(&ring_pending, &ring_capacity);
  } else if (engine_ != nullptr && engine_->running()) {
    engine_->DataPlaneFill(&ring_pending, &ring_capacity);
  }
  const double session_fill =
      session_capacity > 0 ? static_cast<double>(session_pending) /
                                 static_cast<double>(session_capacity)
                           : 0.0;
  const double ring_fill =
      ring_capacity > 0 ? static_cast<double>(ring_pending) /
                              static_cast<double>(ring_capacity)
                        : 0.0;
  overload_.Observe(session_fill, ring_fill,
                    overload_.config().force_drop_oldest ? delivery_.get()
                                                         : nullptr);
}

RunReport PS2Stream::MetricsSnapshot() const {
  RunReport r;
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    r = last_report_;
  }
  // Overlay the counters that are live and thread-safe right now; the base
  // layer's engine internals (ring highwaters, migrations, fault tallies)
  // stay at their last-Stop values.
  const SessionStats sessions = delivery_->AggregateStats();
  r.session_deliveries = sessions.delivered;
  r.session_drops = sessions.dropped;
  r.delivery_latency = sessions.latency;
  r.matches_unrouted = delivery_->unrouted();
  r.dedup_kills = delivery_->dedup_kills();
  r.quota_rejections = quota_.rejections();
  r.rate_limited = quota_.rate_limited();
  r.overload_trips = overload_.trips();
  r.overload_sheds = overload_.sheds();
  r.live_subscriptions = live_subscriptions_.load(std::memory_order_relaxed);
  return r;
}

std::string PS2Stream::MetricsPrometheus() const {
  const RunReport snapshot = MetricsSnapshot();
  if (fabric_ != nullptr && !fabric_->shard_reports().empty()) {
    return RenderPrometheus(snapshot, &fabric_->shard_reports());
  }
  return RenderPrometheus(snapshot, nullptr);
}

std::string PS2Stream::MetricsJson() const {
  return RenderJson(MetricsSnapshot());
}

bool PS2Stream::StartMetricsExporter(MetricsExporter::Options exporter_options) {
  if (exporter_ != nullptr && exporter_->running()) return false;
  exporter_ = std::make_unique<MetricsExporter>(
      std::move(exporter_options), [this] { return MetricsSnapshot(); });
  exporter_->Start();
  return true;
}

void PS2Stream::StopMetricsExporter() {
  if (exporter_ != nullptr) exporter_->Stop();
}

void PS2Stream::Track(const StreamTuple& tuple) {
  if (!options_.auto_adjust) return;
  window_.push_back(tuple);
  if (window_.size() > options_.window_capacity) window_.pop_front();
  if (++tuples_since_check_ >= options_.adjust_check_interval) {
    tuples_since_check_ = 0;
    MaybeAutoAdjust();
  }
}

void PS2Stream::MaybeAutoAdjust() {
  WorkloadSample sample;
  for (const auto& t : window_) {
    switch (t.kind) {
      case TupleKind::kObject:
        sample.objects.push_back(t.object);
        break;
      case TupleKind::kQueryInsert:
        sample.inserts.push_back(t.query);
        break;
      case TupleKind::kQueryDelete:
        sample.deletes.push_back(t.query);
        break;
    }
  }
  SyncMigrationExecutor sync_exec(*cluster_);
  TouchTrackingExecutor exec(sync_exec);
  AdjustReport report = controller_->Check(
      *cluster_, cluster_->WorkerLoads(controller_->config().adjust.cost),
      sample, exec);
  controller_->MaybeEvaluateGlobal(*cluster_, sample);
  if (durability_ != nullptr) {
    durability_->wal().AppendCellRoutes(exec.touched_cells(),
                                        cluster_->router().plan(), vocab_);
  }
  if (report.triggered) {
    adjustments_.push_back(std::move(report));
    cluster_->ResetLoadWindow();
  }
}

}  // namespace ps2
