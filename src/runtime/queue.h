#ifndef PS2_RUNTIME_QUEUE_H_
#define PS2_RUNTIME_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace ps2 {

// Bounded multi-producer multi-consumer blocking queue used between the
// dispatcher and worker stages of the threaded runtime. Backpressure is by
// blocking producers when full — the same flow control Storm applies
// between bolts. Close() releases all waiters; consumers drain remaining
// items before observing end-of-stream.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Pops one item, blocking while empty. Returns nullopt when the queue is
  // closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Pops up to `max_items` at once (reduces lock traffic for hot workers).
  // Empty result means closed-and-drained.
  std::vector<T> PopBatch(size_t max_items) {
    std::vector<T> batch;
    PopBatch(max_items, &batch);
    return batch;
  }

  // Allocation-reusing variant: clears `out` (keeping its capacity) and
  // fills it with up to `max_items`. Consumer loops pass the same vector
  // every drain so the steady state stops reallocating batch storage.
  void PopBatch(size_t max_items, std::vector<T>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    while (!items_.empty() && out->size() < max_items) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (!out->empty()) not_full_.notify_all();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ps2

#endif  // PS2_RUNTIME_QUEUE_H_
