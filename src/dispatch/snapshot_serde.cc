#include "dispatch/snapshot_serde.h"

#include <algorithm>

namespace ps2 {

void WriteSnapshot(ByteWriter& w, const RoutingSnapshot& snapshot) {
  const Rect& b = snapshot.grid.bounds();
  w.Pod<double>(b.min_x);
  w.Pod<double>(b.min_y);
  w.Pod<double>(b.max_x);
  w.Pod<double>(b.max_y);
  w.Pod<int32_t>(snapshot.grid.k());
  w.Pod<uint64_t>(snapshot.version);
  w.Pod<uint32_t>(static_cast<uint32_t>(snapshot.NumCells()));
  for (CellId c = 0; c < snapshot.NumCells(); ++c) {
    const RoutingSnapshot::Cell& cell = snapshot.cell(c);
    w.Pod<int32_t>(cell.worker);
    w.Pod<uint8_t>(cell.IsText() ? 1 : 0);
    if (!cell.IsText()) continue;
    w.Pod<uint32_t>(static_cast<uint32_t>(cell.text->h2.size()));
    for (const auto& [term, workers] : cell.text->h2) {
      w.Pod<uint32_t>(term);
      w.Pod<uint32_t>(static_cast<uint32_t>(workers.size()));
      for (const WorkerId worker : workers) w.Pod<int32_t>(worker);
    }
  }
}

bool ReadSnapshot(ByteReader& r, const std::vector<TermId>& remap,
                  RoutingSnapshot* out) {
  const double mnx = r.Pod<double>();
  const double mny = r.Pod<double>();
  const double mxx = r.Pod<double>();
  const double mxy = r.Pod<double>();
  const int32_t k = r.Pod<int32_t>();
  const uint64_t version = r.Pod<uint64_t>();
  if (!r.ok() || k < 0 || k > 15) return false;
  out->grid = GridSpec(Rect(mnx, mny, mxx, mxy), k);
  out->version = version;

  const uint32_t num_cells = r.Pod<uint32_t>();
  if (!r.FitsCount(num_cells, sizeof(int32_t) + 1)) return false;
  if (num_cells != out->grid.NumCells()) return false;
  out->chunks.clear();
  std::shared_ptr<RoutingSnapshot::Chunk> chunk;
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (c % RoutingSnapshot::kCellsPerChunk == 0) {
      chunk = std::make_shared<RoutingSnapshot::Chunk>();
      chunk->reserve(std::min<size_t>(RoutingSnapshot::kCellsPerChunk,
                                      num_cells - c));
      out->chunks.push_back(chunk);
    }
    RoutingSnapshot::Cell cell;
    cell.worker = r.Pod<int32_t>();
    const uint8_t is_text = r.Pod<uint8_t>();
    if (is_text != 0) {
      const uint32_t num_terms = r.Pod<uint32_t>();
      if (!r.FitsCount(num_terms, 2 * sizeof(uint32_t))) return false;
      auto text = std::make_shared<RoutingSnapshot::TextCell>();
      text->h2.reserve(num_terms);
      for (uint32_t t = 0; t < num_terms && r.ok(); ++t) {
        const uint32_t file_term = r.Pod<uint32_t>();
        const uint32_t num_workers = r.Pod<uint32_t>();
        if (!r.FitsCount(num_workers, sizeof(int32_t))) return false;
        // Ids beyond the remap table are raw-id-world terms; pass through.
        std::vector<WorkerId>& workers =
            text->h2[file_term < remap.size() ? remap[file_term] : file_term];
        workers.reserve(num_workers);
        for (uint32_t i = 0; i < num_workers && r.ok(); ++i) {
          workers.push_back(r.Pod<int32_t>());
        }
      }
      cell.text = std::move(text);
    }
    if (!r.ok()) return false;
    chunk->push_back(std::move(cell));
  }
  return r.ok();
}

}  // namespace ps2
