#ifndef PS2_DISPATCH_GRIDT_INDEX_H_
#define PS2_DISPATCH_GRIDT_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "partition/plan.h"

namespace ps2 {

// The dispatcher's routing index (Section IV-C): a grid whose cells carry
// two maps —
//   H1: the *static* term -> worker assignment of the partition plan (for
//       text-routed cells; space-routed cells map everything to one worker),
//   H2: the *dynamic* map from terms actually used as routing keys by live
//       STS queries to the workers holding those queries.
// Objects are routed via H2, so an object whose terms match no live query's
// routing key in its cell is discarded at the dispatcher ("the object can be
// discarded if it contains no terms in H2") — a large share of the paper's
// dispatcher-side savings. Query inserts/deletes are routed via H1 and
// update H2 with reference counts (a term key may be used by many queries).
class GridtIndex {
 public:
  // `plan` is the compiled output of a partitioner; `vocab` provides term
  // frequencies for routing-key selection and must outlive the index.
  GridtIndex(PartitionPlan plan, const Vocabulary* vocab);

  // Routes a query insertion: returns the (worker, cells) destinations and
  // registers the query's routing keys in H2.
  std::vector<PartitionPlan::QueryRoute> RouteInsert(const STSQuery& q);

  // Routes a query deletion (same destinations as the matching insertion
  // under the current plan) and unregisters H2 keys.
  std::vector<PartitionPlan::QueryRoute> RouteDelete(const STSQuery& q);

  // Routes an object through H2. An empty result means no worker holds any
  // query the object could match — the object is discarded.
  void RouteObject(const SpatioTextualObject& o,
                   std::vector<WorkerId>* out) const;

  // Plan-level (H1-only) object routing, ignoring H2 liveness. Used to
  // quantify the H2 optimization.
  void RouteObjectH1(const SpatioTextualObject& o,
                     std::vector<WorkerId>* out) const;

  const PartitionPlan& plan() const { return plan_; }

  // --- dynamic re-routing support (load adjustment) ------------------------
  // Reassigns a space-routed cell to another worker and rewrites its H2
  // entries. Precondition: the cell is space-routed.
  void ReassignCell(CellId cell, WorkerId to);

  // Converts `cell` into a text-routed cell with the given term map and
  // participating workers; existing H2 entries are remapped with
  // `remap(old_worker, term) -> new_worker` semantics via the new router.
  void SetCellTextRoute(CellId cell,
                        std::unordered_map<TermId, WorkerId> term_map,
                        std::vector<WorkerId> workers);

  // Converts `cell` into a space-routed cell owned by `worker`; all H2
  // entries collapse onto that worker.
  void SetCellSpaceRoute(CellId cell, WorkerId worker);

  // In a text-routed cell, remaps every term currently owned by `from`
  // (both H1 and H2) to `to`. Used when migrating a worker's share of a
  // text cell.
  void RemapCellWorker(CellId cell, WorkerId from, WorkerId to);

  // Live H2 worker set of (cell, term) — exposed for tests.
  std::vector<WorkerId> H2Workers(CellId cell, TermId term) const;

  // Full H2 content of one cell (term -> live worker set), used by the
  // snapshot publisher to materialize immutable per-cell routing entries.
  std::unordered_map<TermId, std::vector<WorkerId>> H2CellMap(
      CellId cell) const;

  // Direct H2 maintenance, used when queries are physically moved outside
  // the insert/delete path (cell text splits during load adjustment).
  void AddH2(CellId cell, TermId term, WorkerId worker);
  void RemoveH2(CellId cell, TermId term, WorkerId worker);

  // Approximate dispatcher memory: H1 (plan) + H2 tables. This is what
  // Figure 9 reports per dispatcher.
  size_t MemoryBytes() const;

  size_t NumH2Entries() const;

 private:
  struct H2Cell {
    // term -> (worker, refcount) pairs; vectors stay tiny (a term routes to
    // one worker per plan, more only transiently during adjustments).
    std::unordered_map<TermId, std::vector<std::pair<WorkerId, uint32_t>>>
        entries;
  };

  PartitionPlan plan_;
  const Vocabulary* vocab_;
  std::unordered_map<CellId, H2Cell> h2_;
  // Reused overlap scratch: filled by RouteQuery during RouteInsert /
  // RouteDelete and walked again by their H2 maintenance loops. Callers
  // already serialize mutations (the SnapshotRouter writer lock in the
  // threaded runtime), which also covers this scratch.
  std::vector<CellId> route_cells_scratch_;
};

}  // namespace ps2

#endif  // PS2_DISPATCH_GRIDT_INDEX_H_
