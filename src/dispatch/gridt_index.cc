#include "dispatch/gridt_index.h"

#include <algorithm>

namespace ps2 {

GridtIndex::GridtIndex(PartitionPlan plan, const Vocabulary* vocab)
    : plan_(std::move(plan)), vocab_(vocab) {}

void GridtIndex::AddH2(CellId cell, TermId term, WorkerId worker) {
  auto& list = h2_[cell].entries[term];
  for (auto& [w, count] : list) {
    if (w == worker) {
      ++count;
      return;
    }
  }
  list.emplace_back(worker, 1);
}

void GridtIndex::RemoveH2(CellId cell, TermId term, WorkerId worker) {
  auto cit = h2_.find(cell);
  if (cit == h2_.end()) return;
  auto tit = cit->second.entries.find(term);
  if (tit == cit->second.entries.end()) return;
  auto& list = tit->second;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].first != worker) continue;
    if (--list[i].second == 0) {
      list[i] = list.back();
      list.pop_back();
    }
    break;
  }
  if (list.empty()) cit->second.entries.erase(tit);
  if (cit->second.entries.empty()) h2_.erase(cit);
}

std::vector<PartitionPlan::QueryRoute> GridtIndex::RouteInsert(
    const STSQuery& q) {
  std::vector<PartitionPlan::QueryRoute> routes;
  // RouteQuery leaves q.region's overlapping cells in the scratch; the H2
  // maintenance below walks the same list instead of recomputing it.
  plan_.RouteQuery(q, *vocab_, &routes, &route_cells_scratch_);
  // H2 is maintained only for text-routed cells (space-routed cells in the
  // paper's gridt carry a bare worker id — Figure 4).
  const std::vector<TermId> terms = q.expr.RoutingTerms(*vocab_);
  for (const CellId cell : route_cells_scratch_) {
    const CellRoute& route = plan_.cells[cell];
    if (!route.IsText()) continue;
    for (const TermId t : terms) {
      AddH2(cell, t, route.text->Route(t));
    }
  }
  return routes;
}

std::vector<PartitionPlan::QueryRoute> GridtIndex::RouteDelete(
    const STSQuery& q) {
  std::vector<PartitionPlan::QueryRoute> routes;
  plan_.RouteQuery(q, *vocab_, &routes, &route_cells_scratch_);
  const std::vector<TermId> terms = q.expr.RoutingTerms(*vocab_);
  for (const CellId cell : route_cells_scratch_) {
    const CellRoute& route = plan_.cells[cell];
    if (!route.IsText()) continue;
    for (const TermId t : terms) {
      RemoveH2(cell, t, route.text->Route(t));
    }
  }
  return routes;
}

void GridtIndex::RouteObject(const SpatioTextualObject& o,
                             std::vector<WorkerId>* out) const {
  out->clear();
  const CellId cell = plan_.grid.CellOf(o.loc);
  const CellRoute& route = plan_.cells[cell];
  if (!route.IsText()) {
    // Space-routed cell: "sent to worker w3 or w4 without checking the
    // textual content" (Figure 4) — objects are never filtered here.
    out->push_back(route.worker);
    return;
  }
  // Text-routed cell: H2 decides which workers hold queries keyed by any
  // of the object's terms; an object matching no live key is discarded.
  auto cit = h2_.find(cell);
  if (cit == h2_.end()) return;
  for (const TermId t : o.terms) {
    auto tit = cit->second.entries.find(t);
    if (tit == cit->second.entries.end()) continue;
    for (const auto& [w, count] : tit->second) out->push_back(w);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void GridtIndex::RouteObjectH1(const SpatioTextualObject& o,
                               std::vector<WorkerId>* out) const {
  plan_.RouteObject(o, out);
}

void GridtIndex::ReassignCell(CellId cell, WorkerId to) {
  plan_.cells[cell].worker = to;
  plan_.cells[cell].text.reset();
  // Space-routed cells carry no H2 state.
  h2_.erase(cell);
}

void GridtIndex::SetCellTextRoute(
    CellId cell, std::unordered_map<TermId, WorkerId> term_map,
    std::vector<WorkerId> workers) {
  auto router = std::make_shared<const TermRouter>(std::move(term_map),
                                                   std::move(workers));
  plan_.cells[cell].text = router;
  plan_.cells[cell].worker = 0;
  auto cit = h2_.find(cell);
  if (cit == h2_.end()) return;
  for (auto& [term, list] : cit->second.entries) {
    uint32_t total = 0;
    for (const auto& [w, count] : list) total += count;
    list.assign(1, {router->Route(term), total});
  }
}

void GridtIndex::SetCellSpaceRoute(CellId cell, WorkerId worker) {
  ReassignCell(cell, worker);
}

void GridtIndex::RemapCellWorker(CellId cell, WorkerId from, WorkerId to) {
  CellRoute& route = plan_.cells[cell];
  if (!route.IsText()) {
    if (route.worker == from) ReassignCell(cell, to);
    return;
  }
  // Clone the router with `from`'s terms remapped to `to`. The clone is
  // cell-local: other cells sharing the original router are unaffected.
  std::unordered_map<TermId, WorkerId> map = route.text->term_map();
  for (auto& [t, w] : map) {
    if (w == from) w = to;
  }
  std::vector<WorkerId> workers = route.text->workers();
  for (auto& w : workers) {
    if (w == from) w = to;
  }
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  route.text =
      std::make_shared<const TermRouter>(std::move(map), std::move(workers));
  auto cit = h2_.find(cell);
  if (cit == h2_.end()) return;
  for (auto& [term, list] : cit->second.entries) {
    // Merge `from` counts into `to`.
    uint32_t moved = 0;
    for (size_t i = 0; i < list.size();) {
      if (list[i].first == from) {
        moved += list[i].second;
        list[i] = list.back();
        list.pop_back();
      } else {
        ++i;
      }
    }
    if (moved == 0) continue;
    bool found = false;
    for (auto& [w, count] : list) {
      if (w == to) {
        count += moved;
        found = true;
        break;
      }
    }
    if (!found) list.emplace_back(to, moved);
  }
}

std::vector<WorkerId> GridtIndex::H2Workers(CellId cell, TermId term) const {
  std::vector<WorkerId> out;
  auto cit = h2_.find(cell);
  if (cit == h2_.end()) return out;
  auto tit = cit->second.entries.find(term);
  if (tit == cit->second.entries.end()) return out;
  for (const auto& [w, count] : tit->second) out.push_back(w);
  std::sort(out.begin(), out.end());
  return out;
}

std::unordered_map<TermId, std::vector<WorkerId>> GridtIndex::H2CellMap(
    CellId cell) const {
  std::unordered_map<TermId, std::vector<WorkerId>> out;
  auto cit = h2_.find(cell);
  if (cit == h2_.end()) return out;
  out.reserve(cit->second.entries.size());
  for (const auto& [term, list] : cit->second.entries) {
    std::vector<WorkerId>& workers = out[term];
    workers.reserve(list.size());
    for (const auto& [w, count] : list) workers.push_back(w);
  }
  return out;
}

size_t GridtIndex::MemoryBytes() const {
  size_t bytes = plan_.MemoryBytes();
  for (const auto& [cell, h2cell] : h2_) {
    bytes += 48;  // cell table entry overhead
    for (const auto& [term, list] : h2cell.entries) {
      bytes += sizeof(TermId) + 32 +
               list.capacity() * sizeof(std::pair<WorkerId, uint32_t>);
    }
  }
  return bytes;
}

size_t GridtIndex::NumH2Entries() const {
  size_t n = 0;
  for (const auto& [cell, h2cell] : h2_) n += h2cell.entries.size();
  return n;
}

}  // namespace ps2
