#include "dispatch/kdt_tree.h"

#include <algorithm>

namespace ps2 {
namespace {

// True when every cell of the block shares the same routing rule.
bool Uniform(const PartitionPlan& plan, uint32_t cx0, uint32_t cy0,
             uint32_t cx1, uint32_t cy1) {
  const CellRoute& first = plan.cells[plan.grid.ToId(cx0, cy0)];
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      const CellRoute& r = plan.cells[plan.grid.ToId(cx, cy)];
      if (r.text.get() != first.text.get()) return false;
      if (!r.IsText() && r.worker != first.worker) return false;
    }
  }
  return true;
}

}  // namespace

KdtTree::KdtTree(const PartitionPlan& plan) : plan_(&plan) {
  root_ = BuildNode(plan, 0, 0, plan.grid.side() - 1, plan.grid.side() - 1, 1);
}

std::unique_ptr<KdtTree::TreeNode> KdtTree::BuildNode(
    const PartitionPlan& plan, uint32_t cx0, uint32_t cy0, uint32_t cx1,
    uint32_t cy1, int depth) {
  auto node = std::make_unique<TreeNode>();
  node->cx0 = cx0;
  node->cy0 = cy0;
  node->cx1 = cx1;
  node->cy1 = cy1;
  depth_ = std::max(depth_, depth);
  if (Uniform(plan, cx0, cy0, cx1, cy1)) {
    node->route = plan.cells[plan.grid.ToId(cx0, cy0)];
    ++num_leaves_;
    return node;
  }
  // Bisect the longer axis (blocks are route-heterogeneous, so they are
  // always splittable here: a 1x1 block is trivially uniform).
  if (cx1 - cx0 >= cy1 - cy0) {
    node->axis = 0;
    node->split = (cx0 + cx1) / 2 + 1;
    node->left = BuildNode(plan, cx0, cy0, node->split - 1, cy1, depth + 1);
    node->right = BuildNode(plan, node->split, cy0, cx1, cy1, depth + 1);
  } else {
    node->axis = 1;
    node->split = (cy0 + cy1) / 2 + 1;
    node->left = BuildNode(plan, cx0, cy0, cx1, node->split - 1, depth + 1);
    node->right = BuildNode(plan, cx0, node->split, cx1, cy1, depth + 1);
  }
  return node;
}

const KdtTree::TreeNode* KdtTree::FindLeaf(uint32_t cx, uint32_t cy) const {
  const TreeNode* node = root_.get();
  while (!node->IsLeaf()) {
    const uint32_t coord = node->axis == 0 ? cx : cy;
    node = coord < node->split ? node->left.get() : node->right.get();
  }
  return node;
}

void KdtTree::RouteObject(const SpatioTextualObject& o,
                          std::vector<WorkerId>* out) const {
  out->clear();
  const GridSpec& grid = plan_->grid;
  const CellId cell = grid.CellOf(o.loc);
  const TreeNode* leaf = FindLeaf(grid.CellX(cell), grid.CellY(cell));
  if (!leaf->route.IsText()) {
    out->push_back(leaf->route.worker);
    return;
  }
  for (const TermId t : o.terms) out->push_back(leaf->route.text->Route(t));
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void KdtTree::CollectLeaves(const TreeNode* node, uint32_t cx0, uint32_t cy0,
                            uint32_t cx1, uint32_t cy1,
                            std::vector<const TreeNode*>* out) const {
  if (cx1 < node->cx0 || cx0 > node->cx1 || cy1 < node->cy0 ||
      cy0 > node->cy1) {
    return;
  }
  if (node->IsLeaf()) {
    out->push_back(node);
    return;
  }
  CollectLeaves(node->left.get(), cx0, cy0, cx1, cy1, out);
  CollectLeaves(node->right.get(), cx0, cy0, cx1, cy1, out);
}

void KdtTree::RouteQuery(const STSQuery& q, const Vocabulary& vocab,
                         std::vector<PartitionPlan::QueryRoute>* out) const {
  out->clear();
  const GridSpec& grid = plan_->grid;
  uint32_t cx0, cy0, cx1, cy1;
  if (!grid.CellRange(q.region, &cx0, &cy0, &cx1, &cy1)) return;
  std::vector<const TreeNode*> leaves;
  CollectLeaves(root_.get(), cx0, cy0, cx1, cy1, &leaves);
  std::unordered_map<WorkerId, std::vector<CellId>> per_worker;
  std::vector<TermId> routing_terms;
  bool have_terms = false;
  for (const TreeNode* leaf : leaves) {
    // Cells of the leaf clipped to the query's cell range.
    const uint32_t lx0 = std::max(cx0, leaf->cx0);
    const uint32_t ly0 = std::max(cy0, leaf->cy0);
    const uint32_t lx1 = std::min(cx1, leaf->cx1);
    const uint32_t ly1 = std::min(cy1, leaf->cy1);
    std::vector<WorkerId> targets;
    if (!leaf->route.IsText()) {
      targets.push_back(leaf->route.worker);
    } else {
      if (!have_terms) {
        routing_terms = q.expr.RoutingTerms(vocab);
        have_terms = true;
      }
      for (const TermId t : routing_terms) {
        targets.push_back(leaf->route.text->Route(t));
      }
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
    }
    for (const WorkerId w : targets) {
      auto& cells = per_worker[w];
      for (uint32_t cy = ly0; cy <= ly1; ++cy) {
        for (uint32_t cx = lx0; cx <= lx1; ++cx) {
          cells.push_back(grid.ToId(cx, cy));
        }
      }
    }
  }
  for (auto& [worker, cells] : per_worker) {
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    out->push_back(PartitionPlan::QueryRoute{worker, std::move(cells)});
  }
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.worker < b.worker; });
}

}  // namespace ps2
