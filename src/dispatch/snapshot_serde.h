#ifndef PS2_DISPATCH_SNAPSHOT_SERDE_H_
#define PS2_DISPATCH_SNAPSHOT_SERDE_H_

#include <vector>

#include "common/bytes.h"
#include "dispatch/routing_snapshot.h"

namespace ps2 {

// Binary serialization of a RoutingSnapshot — the live (H2) half of the
// routing state: which terms currently key live queries, per cell, and the
// workers holding them. Checkpoints embed one so inspection tools and
// recovery diagnostics can see exactly what the dispatchers were routing
// against, without re-deriving it from the query set.
//
// Term ids are file-relative like in plan_serde: the surrounding format
// serializes the vocabulary and hands ReadSnapshot the remap table.
//
// Layout (little-endian):
//   bounds f64 x4, k i32, u64 version
//   u32 #cells, per cell: i32 worker, u8 is_text,
//     text: u32 #terms, per term: u32 term, u32 #workers, i32 workers[]
void WriteSnapshot(ByteWriter& w, const RoutingSnapshot& snapshot);

// Decodes into `out`, rebuilding the chunked copy-on-write layout. Returns
// false on malformed input.
bool ReadSnapshot(ByteReader& r, const std::vector<TermId>& remap,
                  RoutingSnapshot* out);

}  // namespace ps2

#endif  // PS2_DISPATCH_SNAPSHOT_SERDE_H_
