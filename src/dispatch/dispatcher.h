#ifndef PS2_DISPATCH_DISPATCHER_H_
#define PS2_DISPATCH_DISPATCHER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/query.h"
#include "dispatch/dispatch_stats.h"
#include "dispatch/gridt_index.h"

namespace ps2 {

// The dispatcher component (Figure 1): consumes the merged stream of
// spatio-textual objects and query insert/delete requests and produces the
// per-worker deliveries dictated by the gridt index, while keeping the
// statistics the load controller needs (per-worker tallies, discard counts,
// fan-out). In the threaded runtime several dispatcher threads share one
// GridtIndex; this class is the single-threaded routing core.
class Dispatcher {
 public:
  // One routed delivery: which worker receives the tuple, and (for query
  // updates) which cells it applies to there.
  struct Delivery {
    WorkerId worker = 0;
    std::vector<CellId> cells;  // empty for objects
  };

  // `index` is shared with the load controller; not owned.
  explicit Dispatcher(GridtIndex* index) : index_(index) {}

  // Routes one tuple, appending deliveries. Objects that match no live
  // query key are discarded (counted, no deliveries).
  void Route(const StreamTuple& tuple, std::vector<Delivery>* out);

  // --- statistics ----------------------------------------------------------
  // One Stats instance belongs to one thread; the threaded engine keeps a
  // private copy per dispatcher thread and merges on stop.
  using Stats = DispatchStats;
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  GridtIndex& index() { return *index_; }

 private:
  GridtIndex* index_;
  Stats stats_;
  std::vector<WorkerId> scratch_workers_;
};

}  // namespace ps2

#endif  // PS2_DISPATCH_DISPATCHER_H_
