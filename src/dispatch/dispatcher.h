#ifndef PS2_DISPATCH_DISPATCHER_H_
#define PS2_DISPATCH_DISPATCHER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/query.h"
#include "dispatch/gridt_index.h"

namespace ps2 {

// The dispatcher component (Figure 1): consumes the merged stream of
// spatio-textual objects and query insert/delete requests and produces the
// per-worker deliveries dictated by the gridt index, while keeping the
// statistics the load controller needs (per-worker tallies, discard counts,
// fan-out). In the threaded runtime several dispatcher threads share one
// GridtIndex; this class is the single-threaded routing core.
class Dispatcher {
 public:
  // One routed delivery: which worker receives the tuple, and (for query
  // updates) which cells it applies to there.
  struct Delivery {
    WorkerId worker = 0;
    std::vector<CellId> cells;  // empty for objects
  };

  // `index` is shared with the load controller; not owned.
  explicit Dispatcher(GridtIndex* index) : index_(index) {}

  // Routes one tuple, appending deliveries. Objects that match no live
  // query key are discarded (counted, no deliveries).
  void Route(const StreamTuple& tuple, std::vector<Delivery>* out);

  // --- statistics ----------------------------------------------------------
  struct Stats {
    uint64_t objects_routed = 0;
    uint64_t objects_discarded = 0;
    uint64_t inserts_routed = 0;
    uint64_t deletes_routed = 0;
    uint64_t object_deliveries = 0;  // sum of per-object fanout
    uint64_t query_deliveries = 0;
    double ObjectFanout() const {
      return objects_routed == 0
                 ? 0.0
                 : static_cast<double>(object_deliveries) / objects_routed;
    }
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  GridtIndex& index() { return *index_; }

 private:
  GridtIndex* index_;
  Stats stats_;
  std::vector<WorkerId> scratch_workers_;
};

}  // namespace ps2

#endif  // PS2_DISPATCH_DISPATCHER_H_
