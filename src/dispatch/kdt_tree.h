#ifndef PS2_DISPATCH_KDT_TREE_H_
#define PS2_DISPATCH_KDT_TREE_H_

#include <memory>
#include <vector>

#include "partition/plan.h"

namespace ps2 {

// The kdt-tree as a *dispatcher index* (Section IV-C): a binary space
// decomposition whose leaves carry either a worker id or a TermRouter.
// Routing walks root-to-leaf in O(log #leaves).
//
// The paper notes this tree "may overload the dispatcher when arrival
// speeds are very fast" and replaces it with the O(1) gridt index; we build
// the tree from a PartitionPlan (recursively bisecting the grid until every
// region is route-uniform) so the two representations are provably
// equivalent (see kdt_tree_test) and the gridt-vs-kdt dispatch cost is
// ablatable (bench_ablation_dispatch).
class KdtTree {
 public:
  // Builds the tree from a compiled plan. The plan must outlive the tree
  // (leaf routers are shared).
  explicit KdtTree(const PartitionPlan& plan);

  // Workers an object is sent to (same contract as PartitionPlan).
  void RouteObject(const SpatioTextualObject& o,
                   std::vector<WorkerId>* out) const;

  // Workers + cells a query is sent to (same contract as PartitionPlan).
  void RouteQuery(const STSQuery& q, const Vocabulary& vocab,
                  std::vector<PartitionPlan::QueryRoute>* out) const;

  size_t NumLeaves() const { return num_leaves_; }
  int Depth() const { return depth_; }

 private:
  struct TreeNode {
    // Cell-coordinate block this node covers (inclusive).
    uint32_t cx0, cy0, cx1, cy1;
    // Interior: split axis (0=x, 1=y) and the first cell coordinate of the
    // right child. Leaves: route.
    int axis = -1;
    uint32_t split = 0;
    std::unique_ptr<TreeNode> left, right;
    CellRoute route;  // valid for leaves
    bool IsLeaf() const { return axis < 0; }
  };

  std::unique_ptr<TreeNode> BuildNode(const PartitionPlan& plan, uint32_t cx0,
                                      uint32_t cy0, uint32_t cx1,
                                      uint32_t cy1, int depth);
  const TreeNode* FindLeaf(uint32_t cx, uint32_t cy) const;
  void CollectLeaves(const TreeNode* node, uint32_t cx0, uint32_t cy0,
                     uint32_t cx1, uint32_t cy1,
                     std::vector<const TreeNode*>* out) const;

  const PartitionPlan* plan_;
  std::unique_ptr<TreeNode> root_;
  size_t num_leaves_ = 0;
  int depth_ = 0;
};

}  // namespace ps2

#endif  // PS2_DISPATCH_KDT_TREE_H_
