#ifndef PS2_DISPATCH_ROUTING_SNAPSHOT_H_
#define PS2_DISPATCH_ROUTING_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dispatch/gridt_index.h"

namespace ps2 {

// An immutable, epoch-published view of the gridt routing table. Object
// routing in the threaded runtime happens exclusively against a snapshot —
// no lock is taken on the hot path; readers pin the current epoch with one
// atomic shared_ptr load and the snapshot they hold stays valid (and
// internally consistent) for as long as they keep the pointer, even while a
// newer epoch is being installed.
//
// Cells are grouped into fixed-size chunks that are shared structurally
// between epochs: a query insert/delete that touches k cells republishes
// only the chunks containing those cells (copy-on-write), so the cost of a
// publication is proportional to the update's footprint, not to the table.
struct RoutingSnapshot {
  // Routing state of one text-routed cell: term -> live worker set (the H2
  // view the dispatcher filters objects through). Space-routed cells carry a
  // bare worker id and no text entry, exactly like the paper's gridt.
  struct TextCell {
    std::unordered_map<TermId, std::vector<WorkerId>> h2;
  };

  struct Cell {
    WorkerId worker = 0;
    std::shared_ptr<const TextCell> text;  // non-null => text-routed

    bool IsText() const { return text != nullptr; }
  };

  static constexpr size_t kCellsPerChunk = 64;
  using Chunk = std::vector<Cell>;  // kCellsPerChunk entries (last may be short)

  GridSpec grid;
  std::vector<std::shared_ptr<const Chunk>> chunks;
  uint64_t version = 0;

  const Cell& cell(CellId c) const {
    return (*chunks[static_cast<size_t>(c) / kCellsPerChunk])
        [static_cast<size_t>(c) % kCellsPerChunk];
  }

  // Same semantics as GridtIndex::RouteObject: space-routed cells forward
  // unconditionally; text-routed cells route through H2 and an object whose
  // terms hit no live key is discarded (empty result).
  void RouteObject(const SpatioTextualObject& o,
                   std::vector<WorkerId>* out) const;

  size_t NumCells() const;
};

// Owns the master GridtIndex's concurrency story for the threaded runtime:
// writers (query-update routing and the load controller) serialize on an
// internal mutex and publish a fresh immutable RoutingSnapshot after every
// mutation; readers (dispatcher threads routing objects) never block.
class SnapshotRouter {
 public:
  // `master` is the cluster's routing index; not owned, must outlive the
  // router. The initial epoch is built immediately.
  explicit SnapshotRouter(GridtIndex* master);

  // Lock-free read of the current epoch.
  std::shared_ptr<const RoutingSnapshot> Current() const;
  // Version of the latest published epoch, from a plain atomic counter that
  // is advanced *after* the snapshot swap — so for any reader,
  // CurrentVersion() <= Current()->version when called in that order (the
  // stamp-before-pin invariant the engine's migration barrier relies on),
  // and the hot path pays one integer load instead of a second shared_ptr
  // atomic load.
  uint64_t CurrentVersion() const {
    return version_.load();  // seq_cst: pairs with the epoch handshake
  }

  // Query-update routing: routes through the master under the writer lock,
  // maintains H2, and incrementally republishes the touched cells.
  // When `pending_pushes` is non-null it is incremented *before* the writer
  // lock is released; the caller decrements it once the returned deliveries
  // are enqueued, so a concurrent Mutate() can wait until no routed update
  // is still on its way to a worker queue.
  std::vector<PartitionPlan::QueryRoute> RouteInsert(
      const STSQuery& q, std::atomic<int>* pending_pushes = nullptr);
  std::vector<PartitionPlan::QueryRoute> RouteDelete(
      const STSQuery& q, std::atomic<int>* pending_pushes = nullptr);

  // Controller seam: runs `fn` against the master under the writer lock;
  // when it returns true the whole table is rebuilt off the dispatcher
  // threads and installed with one atomic swap. Readers keep routing against
  // the previous epoch until the swap.
  bool Mutate(const std::function<bool(GridtIndex&)>& fn);

  uint64_t version() const { return Current()->version; }

  // Consistent copy of the master's PartitionPlan (H1 + installed
  // migrations), taken under the writer lock so it never interleaves with a
  // controller mutation. Checkpoints capture plans through this.
  PartitionPlan PlanCopy();

  GridtIndex& master() { return *master_; }

 private:
  // All three require `mu_` to be held.
  std::shared_ptr<const RoutingSnapshot> BuildFull() const;
  void PublishCells(const std::vector<CellId>& cells);
  // Fills touched_cells_scratch_ with the cells whose snapshot entry a
  // query update for `q` can change: the text-routed cells overlapping its
  // region (space-routed cells carry no H2).
  void CollectTouchedTextCells(const STSQuery& q);

  GridtIndex* master_;
  std::mutex mu_;  // serializes writers (query updates + controller)
  std::shared_ptr<const RoutingSnapshot> current_;  // atomic_load/atomic_store
  std::atomic<uint64_t> version_{0};  // == current_->version, set post-swap
  // Reused per-update scratch (guarded by mu_): region overlap and the
  // text-routed subset handed to PublishCells.
  std::vector<CellId> overlap_scratch_;
  std::vector<CellId> touched_cells_scratch_;
};

}  // namespace ps2

#endif  // PS2_DISPATCH_ROUTING_SNAPSHOT_H_
