#include "dispatch/merger.h"

namespace ps2 {

bool Merger::Accept(const MatchResult& m) {
  const uint64_t key = Key(m);
  if (!seen_.insert(key).second) {
    ++duplicates_;
    return false;
  }
  fifo_.push_back(key);
  if (fifo_.size() > capacity_) {
    seen_.erase(fifo_.front());
    fifo_.pop_front();
  }
  ++delivered_;
  return true;
}

}  // namespace ps2
