#include "dispatch/dispatcher.h"

namespace ps2 {

void Dispatcher::Route(const StreamTuple& tuple,
                       std::vector<Delivery>* out) {
  out->clear();
  switch (tuple.kind) {
    case TupleKind::kObject: {
      index_->RouteObject(tuple.object, &scratch_workers_);
      if (scratch_workers_.empty()) {
        ++stats_.objects_discarded;
        return;
      }
      ++stats_.objects_routed;
      stats_.object_deliveries += scratch_workers_.size();
      out->reserve(scratch_workers_.size());
      for (const WorkerId w : scratch_workers_) {
        out->push_back(Delivery{w, {}});
      }
      return;
    }
    case TupleKind::kQueryInsert: {
      ++stats_.inserts_routed;
      for (auto& r : index_->RouteInsert(tuple.query)) {
        ++stats_.query_deliveries;
        out->push_back(Delivery{r.worker, std::move(r.cells)});
      }
      return;
    }
    case TupleKind::kQueryDelete: {
      ++stats_.deletes_routed;
      for (auto& r : index_->RouteDelete(tuple.query)) {
        ++stats_.query_deliveries;
        out->push_back(Delivery{r.worker, std::move(r.cells)});
      }
      return;
    }
  }
}

}  // namespace ps2
