#ifndef PS2_DISPATCH_DISPATCH_STATS_H_
#define PS2_DISPATCH_DISPATCH_STATS_H_

#include <cstdint>

namespace ps2 {

// Routing statistics of one dispatcher. In the threaded runtime every
// dispatcher thread owns a private instance (no shared mutable counters on
// the routing hot path); the engine merges them into the run report when the
// threads are joined.
struct DispatchStats {
  uint64_t objects_routed = 0;
  uint64_t objects_discarded = 0;
  uint64_t inserts_routed = 0;
  uint64_t deletes_routed = 0;
  uint64_t object_deliveries = 0;  // sum of per-object fanout
  uint64_t query_deliveries = 0;

  double ObjectFanout() const {
    return objects_routed == 0
               ? 0.0
               : static_cast<double>(object_deliveries) / objects_routed;
  }

  void Merge(const DispatchStats& o) {
    objects_routed += o.objects_routed;
    objects_discarded += o.objects_discarded;
    inserts_routed += o.inserts_routed;
    deletes_routed += o.deletes_routed;
    object_deliveries += o.object_deliveries;
    query_deliveries += o.query_deliveries;
  }
};

}  // namespace ps2

#endif  // PS2_DISPATCH_DISPATCH_STATS_H_
