#ifndef PS2_DISPATCH_MERGER_H_
#define PS2_DISPATCH_MERGER_H_

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "core/query.h"

namespace ps2 {

// The merger component (Figure 1): removes duplicated matching results
// before delivery. Duplicates arise whenever a query is stored on several
// workers (wide regions under space partitioning, multi-term routing under
// text partitioning) and an object reaches more than one of them.
//
// Role today: the synchronous cluster still dedups through this component
// inline, but the threaded engine's workers filter through the sharded
// ShardedDedupWindow (common/dedup_window.h) instead — the merger is off
// the threaded hot path and serves only as the reference filter that
// EngineOptions::merger_audit replays matches through to cross-check the
// sharded window's verdicts.
//
// Deduplication state is bounded: (query, object) keys are remembered in a
// FIFO window of `window_capacity` entries. The stream is roughly ordered by
// object id, so duplicates of a pair arrive close together and a window far
// larger than the worker fan-out suffices (duplicates of one object arrive
// within one object's fan-out of each other).
class Merger {
 public:
  explicit Merger(size_t window_capacity = 1 << 20)
      : capacity_(window_capacity) {}

  // Returns true when the match is new (should be delivered) and false for
  // a duplicate.
  bool Accept(const MatchResult& m);

  uint64_t delivered() const { return delivered_; }
  uint64_t duplicates() const { return duplicates_; }

  size_t MemoryBytes() const {
    return seen_.size() * (sizeof(uint64_t) + 16) +
           fifo_.size() * sizeof(uint64_t);
  }

 private:
  static uint64_t Key(const MatchResult& m) {
    // 64-bit mix of (query, object); collision odds are negligible for the
    // window sizes used (and a collision only suppresses one delivery).
    uint64_t h = m.query_id * 0x9E3779B97F4A7C15ULL;
    h ^= m.object_id + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  }

  size_t capacity_;
  std::unordered_set<uint64_t> seen_;
  std::deque<uint64_t> fifo_;
  uint64_t delivered_ = 0;
  uint64_t duplicates_ = 0;
};

}  // namespace ps2

#endif  // PS2_DISPATCH_MERGER_H_
