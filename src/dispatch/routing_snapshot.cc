#include "dispatch/routing_snapshot.h"

#include <algorithm>

namespace ps2 {

void RoutingSnapshot::RouteObject(const SpatioTextualObject& o,
                                  std::vector<WorkerId>* out) const {
  out->clear();
  const Cell& c = cell(grid.CellOf(o.loc));
  if (!c.IsText()) {
    out->push_back(c.worker);
    return;
  }
  const auto& h2 = c.text->h2;
  for (const TermId t : o.terms) {
    auto it = h2.find(t);
    if (it == h2.end()) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

size_t RoutingSnapshot::NumCells() const {
  size_t n = 0;
  for (const auto& chunk : chunks) n += chunk->size();
  return n;
}

namespace {

RoutingSnapshot::Cell BuildCell(const GridtIndex& master, CellId c) {
  RoutingSnapshot::Cell out;
  const CellRoute& route = master.plan().cells[c];
  if (route.IsText()) {
    auto text = std::make_shared<RoutingSnapshot::TextCell>();
    text->h2 = master.H2CellMap(c);
    out.text = std::move(text);
  } else {
    out.worker = route.worker;
  }
  return out;
}

}  // namespace

SnapshotRouter::SnapshotRouter(GridtIndex* master) : master_(master) {
  std::lock_guard<std::mutex> lock(mu_);
  auto snap = BuildFull();
  const uint64_t v = snap->version;
  std::atomic_store(&current_, std::move(snap));
  version_.store(v);  // seq_cst: pairs with the dispatchers' epoch handshake
}

std::shared_ptr<const RoutingSnapshot> SnapshotRouter::Current() const {
  return std::atomic_load(&current_);
}

std::shared_ptr<const RoutingSnapshot> SnapshotRouter::BuildFull() const {
  auto snap = std::make_shared<RoutingSnapshot>();
  snap->grid = master_->plan().grid;
  const size_t num_cells = master_->plan().cells.size();
  const auto old = std::atomic_load(&current_);
  snap->version = old == nullptr ? 1 : old->version + 1;
  snap->chunks.reserve(
      (num_cells + RoutingSnapshot::kCellsPerChunk - 1) /
      RoutingSnapshot::kCellsPerChunk);
  for (size_t base = 0; base < num_cells;
       base += RoutingSnapshot::kCellsPerChunk) {
    auto chunk = std::make_shared<RoutingSnapshot::Chunk>();
    const size_t end =
        std::min(base + RoutingSnapshot::kCellsPerChunk, num_cells);
    chunk->reserve(end - base);
    for (size_t c = base; c < end; ++c) {
      chunk->push_back(BuildCell(*master_, static_cast<CellId>(c)));
    }
    snap->chunks.push_back(std::move(chunk));
  }
  return snap;
}

void SnapshotRouter::PublishCells(const std::vector<CellId>& cells) {
  if (cells.empty()) return;
  const auto old = std::atomic_load(&current_);
  auto snap = std::make_shared<RoutingSnapshot>(*old);  // shares all chunks
  snap->version = old->version + 1;
  // Copy-on-write per chunk: rebuild only the touched cells, share the rest.
  std::unordered_map<size_t, std::shared_ptr<RoutingSnapshot::Chunk>> cloned;
  for (const CellId c : cells) {
    const size_t chunk_idx =
        static_cast<size_t>(c) / RoutingSnapshot::kCellsPerChunk;
    auto it = cloned.find(chunk_idx);
    if (it == cloned.end()) {
      it = cloned
               .emplace(chunk_idx, std::make_shared<RoutingSnapshot::Chunk>(
                                       *snap->chunks[chunk_idx]))
               .first;
      snap->chunks[chunk_idx] = it->second;
    }
    (*it->second)[static_cast<size_t>(c) % RoutingSnapshot::kCellsPerChunk] =
        BuildCell(*master_, c);
  }
  const uint64_t v = snap->version;
  std::atomic_store(&current_,
                    std::shared_ptr<const RoutingSnapshot>(std::move(snap)));
  version_.store(v);  // seq_cst: pairs with the dispatchers' epoch handshake
}

void SnapshotRouter::CollectTouchedTextCells(const STSQuery& q) {
  touched_cells_scratch_.clear();
  master_->plan().grid.CellsOverlapping(q.region, &overlap_scratch_);
  for (const CellId c : overlap_scratch_) {
    if (master_->plan().cells[c].IsText()) touched_cells_scratch_.push_back(c);
  }
}

std::vector<PartitionPlan::QueryRoute> SnapshotRouter::RouteInsert(
    const STSQuery& q, std::atomic<int>* pending_pushes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto routes = master_->RouteInsert(q);
  CollectTouchedTextCells(q);
  PublishCells(touched_cells_scratch_);
  if (pending_pushes != nullptr) pending_pushes->fetch_add(1);
  return routes;
}

std::vector<PartitionPlan::QueryRoute> SnapshotRouter::RouteDelete(
    const STSQuery& q, std::atomic<int>* pending_pushes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto routes = master_->RouteDelete(q);
  CollectTouchedTextCells(q);
  PublishCells(touched_cells_scratch_);
  if (pending_pushes != nullptr) pending_pushes->fetch_add(1);
  return routes;
}

PartitionPlan SnapshotRouter::PlanCopy() {
  std::lock_guard<std::mutex> lock(mu_);
  return master_->plan();
}

bool SnapshotRouter::Mutate(const std::function<bool(GridtIndex&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fn(*master_)) return false;
  auto snap = BuildFull();
  const uint64_t v = snap->version;
  std::atomic_store(&current_, std::move(snap));
  version_.store(v);  // seq_cst: pairs with the dispatchers' epoch handshake
  return true;
}

}  // namespace ps2
