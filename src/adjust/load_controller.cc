#include "adjust/load_controller.h"

namespace ps2 {

LoadController::LoadController(const LoadControllerConfig& config)
    : config_(config), adjuster_(config.adjust) {}

AdjustReport LoadController::Check(Cluster& cluster,
                                   const std::vector<double>& loads,
                                   const WorkloadSample& window,
                                   MigrationExecutor& exec) {
  ++totals_.checks;
  AdjustReport report = adjuster_.Adjust(cluster, window, loads, exec);
  if (report.triggered) {
    ++totals_.triggered;
    const bool moved = report.queries_moved > 0 || report.phase1_splits > 0 ||
                       report.phase1_merges > 0 ||
                       !report.selection.cells.empty();
    if (moved) {
      ++totals_.adjustments;
      totals_.cells_moved += report.selection.cells.size() +
                             report.phase1_splits + report.phase1_merges;
      totals_.queries_moved += report.queries_moved;
      totals_.bytes_moved += report.bytes_migrated;
    }
    history_.push_back(report);
    // The controller can run for the lifetime of a service; keep only the
    // recent reports (totals_ keeps the lifetime aggregates).
    if (history_.size() > kMaxHistory) {
      history_.erase(history_.begin(),
                     history_.end() - static_cast<ptrdiff_t>(kMaxHistory));
    }
  }
  return report;
}

bool LoadController::MaybeEvaluateGlobal(Cluster& cluster,
                                         const WorkloadSample& window) {
  if (!config_.evaluate_global || config_.global_check_every == 0 ||
      totals_.checks % config_.global_check_every != 0 || window.empty()) {
    return false;
  }
  ++global_evaluations_;
  global_decision_ = std::make_unique<RepartitionDecision>(
      EvaluateRepartition(cluster.router().plan(), window, cluster.vocab(),
                          config_.partition,
                          config_.global_improvement_threshold));
  return global_decision_->repartition;
}

AdjustReport LoadController::Check(Cluster& cluster,
                                   const WorkloadSample& window) {
  SyncMigrationExecutor exec(cluster);
  AdjustReport report = Check(
      cluster, cluster.WorkerLoads(config_.adjust.cost), window, exec);
  MaybeEvaluateGlobal(cluster, window);
  return report;
}

}  // namespace ps2
