#ifndef PS2_ADJUST_TOUCH_TRACKING_EXECUTOR_H_
#define PS2_ADJUST_TOUCH_TRACKING_EXECUTOR_H_

#include <algorithm>
#include <vector>

#include "adjust/migration_executor.h"

namespace ps2 {

// Decorator recording which cells an adjustment rewrote, in operation
// order, deduplicated. Both runtimes wrap their executor in one of these
// and journal the touched cells' resulting routes to the WAL afterwards —
// keeping the "every installed migration reaches the log" invariant in one
// place instead of per-executor.
class TouchTrackingExecutor : public MigrationExecutor {
 public:
  explicit TouchTrackingExecutor(MigrationExecutor& inner) : inner_(inner) {}

  MigrationStats MigrateCell(CellId cell, WorkerId from,
                             WorkerId to) override {
    Touch(cell);
    return inner_.MigrateCell(cell, from, to);
  }
  MigrationStats TextSplitCell(
      CellId cell, WorkerId keep, WorkerId to,
      const std::unordered_map<TermId, WorkerId>& term_map) override {
    Touch(cell);
    return inner_.TextSplitCell(cell, keep, to, term_map);
  }
  MigrationStats MergeCellTo(CellId cell, WorkerId to) override {
    Touch(cell);
    return inner_.MergeCellTo(cell, to);
  }

  const std::vector<CellId>& touched_cells() const { return touched_; }

 private:
  void Touch(CellId cell) {
    if (std::find(touched_.begin(), touched_.end(), cell) == touched_.end()) {
      touched_.push_back(cell);
    }
  }

  MigrationExecutor& inner_;
  std::vector<CellId> touched_;
};

}  // namespace ps2

#endif  // PS2_ADJUST_TOUCH_TRACKING_EXECUTOR_H_
