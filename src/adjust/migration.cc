#include "adjust/migration.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/stopwatch.h"

namespace ps2 {
namespace {

double TotalLoad(const std::vector<MigratableCell>& cells) {
  double sum = 0.0;
  for (const auto& c : cells) sum += c.load;
  return sum;
}

MigrationSelection TakeAll(const std::vector<MigratableCell>& cells,
                           const char* algorithm) {
  MigrationSelection sel;
  sel.algorithm = algorithm;
  for (const auto& c : cells) {
    sel.cells.push_back(c.cell);
    sel.total_load += c.load;
    sel.total_size += c.size;
  }
  return sel;
}

}  // namespace

MigrationSelection SelectCellsDP(const std::vector<MigratableCell>& cells,
                                 double tau, double size_resolution) {
  Stopwatch timer;
  if (TotalLoad(cells) < tau) {
    auto sel = TakeAll(cells, "DP");
    sel.selection_ms = timer.ElapsedSeconds() * 1e3;
    return sel;
  }
  const size_t n = cells.size();
  // Discretize sizes (ceil so a budget that admits the discretized solution
  // admits the real one).
  std::vector<uint32_t> s(n);
  uint64_t total_units = 0;
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<uint32_t>(
        std::max(1.0, std::ceil(cells[i].size / size_resolution)));
    total_units += s[i];
  }
  const size_t p = static_cast<size_t>(total_units);  // size upper bound
  // a[i][j]: best load with first i cells, size budget j. Full table kept
  // for backtracking — this is the O(nP) memory cost the paper criticizes.
  std::vector<std::vector<double>> a(n + 1, std::vector<double>(p + 1, 0.0));
  for (size_t i = 1; i <= n; ++i) {
    const uint32_t si = s[i - 1];
    const double li = cells[i - 1].load;
    for (size_t j = 0; j <= p; ++j) {
      a[i][j] = a[i - 1][j];
      if (j >= si) {
        a[i][j] = std::max(a[i][j], a[i - 1][j - si] + li);
      }
    }
  }
  // Smallest budget meeting tau.
  size_t budget = p;
  for (size_t j = 0; j <= p; ++j) {
    if (a[n][j] >= tau) {
      budget = j;
      break;
    }
  }
  MigrationSelection sel;
  sel.algorithm = "DP";
  // Backtrack.
  size_t j = budget;
  for (size_t i = n; i >= 1; --i) {
    if (a[i][j] != a[i - 1][j]) {
      sel.cells.push_back(cells[i - 1].cell);
      sel.total_load += cells[i - 1].load;
      sel.total_size += cells[i - 1].size;
      j -= s[i - 1];
    }
  }
  std::reverse(sel.cells.begin(), sel.cells.end());
  sel.selection_ms = timer.ElapsedSeconds() * 1e3;
  return sel;
}

MigrationSelection SelectCellsGR(const std::vector<MigratableCell>& cells,
                                 double tau) {
  Stopwatch timer;
  if (TotalLoad(cells) < tau) {
    auto sel = TakeAll(cells, "GR");
    sel.selection_ms = timer.ElapsedSeconds() * 1e3;
    return sel;
  }
  // Ascending relative cost Sg/Lg; zero-load cells carry infinite relative
  // cost and sort last.
  std::vector<size_t> order(cells.size());
  std::iota(order.begin(), order.end(), 0);
  const auto rel = [&](size_t i) {
    return cells[i].load > 0.0 ? cells[i].size / cells[i].load
                               : std::numeric_limits<double>::infinity();
  };
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return rel(x) < rel(y); });

  std::vector<size_t> gs;  // accumulated "GS" cells (prefix of a solution)
  double gs_load = 0.0, gs_size = 0.0;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> best;
  double best_load = 0.0;
  for (const size_t i : order) {
    if (gs_load + cells[i].load < tau) {
      gs.push_back(i);
      gs_load += cells[i].load;
      gs_size += cells[i].size;
      continue;
    }
    // `i` is a GL cell: GS u {i} is a candidate solution.
    const double cost = gs_size + cells[i].size;
    if (cost < best_cost) {
      best_cost = cost;
      best = gs;
      best.push_back(i);
      best_load = gs_load + cells[i].load;
    }
  }
  MigrationSelection sel;
  sel.algorithm = "GR";
  if (best.empty()) {
    // No single completer existed (all loads tiny): fall back to the GS
    // prefix, which by the total-load check above cannot happen; defensive.
    best = gs;
    best_load = gs_load;
    best_cost = gs_size;
  }
  for (const size_t i : best) {
    sel.cells.push_back(cells[i].cell);
    sel.total_size += cells[i].size;
  }
  sel.total_load = best_load;
  sel.selection_ms = timer.ElapsedSeconds() * 1e3;
  return sel;
}

MigrationSelection SelectCellsSI(const std::vector<MigratableCell>& cells,
                                 double tau) {
  Stopwatch timer;
  std::vector<size_t> order(cells.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return cells[x].size > cells[y].size;
  });
  MigrationSelection sel;
  sel.algorithm = "SI";
  for (const size_t i : order) {
    if (sel.total_load >= tau) break;
    sel.cells.push_back(cells[i].cell);
    sel.total_load += cells[i].load;
    sel.total_size += cells[i].size;
  }
  sel.selection_ms = timer.ElapsedSeconds() * 1e3;
  return sel;
}

MigrationSelection SelectCellsRA(const std::vector<MigratableCell>& cells,
                                 double tau, Rng& rng) {
  Stopwatch timer;
  std::vector<size_t> order(cells.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle with our deterministic RNG.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  MigrationSelection sel;
  sel.algorithm = "RA";
  for (const size_t i : order) {
    if (sel.total_load >= tau) break;
    sel.cells.push_back(cells[i].cell);
    sel.total_load += cells[i].load;
    sel.total_size += cells[i].size;
  }
  sel.selection_ms = timer.ElapsedSeconds() * 1e3;
  return sel;
}

MigrationSelection SelectCells(const std::string& algorithm,
                               const std::vector<MigratableCell>& cells,
                               double tau, Rng& rng) {
  if (algorithm == "DP") return SelectCellsDP(cells, tau);
  if (algorithm == "GR") return SelectCellsGR(cells, tau);
  if (algorithm == "SI") return SelectCellsSI(cells, tau);
  return SelectCellsRA(cells, tau, rng);
}

}  // namespace ps2
