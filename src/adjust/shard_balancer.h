#ifndef PS2_ADJUST_SHARD_BALANCER_H_
#define PS2_ADJUST_SHARD_BALANCER_H_

#include <cstdint>
#include <vector>

#include "shard/shard_map.h"

namespace ps2 {

// One planned cross-shard cell move: hand `cell` from its current owner to
// `to`. The fabric executes it with the WAL'd copy -> publish -> drain ->
// remove migration.
struct ShardMove {
  CellId cell = 0;
  ShardId from = 0;
  ShardId to = 0;
};

// Cross-shard counterpart of the in-shard LocalAdjuster, one level up the
// hierarchy: where the local adjuster moves cells between *workers inside
// one engine* using the Definition 1 cost model, this balancer moves cells
// between *shards* using observed per-cell object traffic (the front
// counts every routed object, so the signal is exact, not sampled).
//
// Greedy and deliberately conservative: while the balance factor
// (Lmax/Lmin, the paper's sigma constraint applied to shard loads) exceeds
// sigma, ship the hottest cell of the hottest shard to the coolest shard —
// but only when that actually helps (the move must not just swap which
// shard is overloaded). Cross-shard migrations copy queries over the
// transport, so fewer, bigger-impact moves beat many marginal ones.
class ShardBalancer {
 public:
  explicit ShardBalancer(double sigma = 1.5) : sigma_(sigma) {}

  // Plans up to `max_moves` moves given the current map and the per-cell
  // object counts for the elapsed window. Returns an empty plan when the
  // load is within sigma, a shard would be left empty of cells, or no
  // single-cell move improves the imbalance.
  std::vector<ShardMove> Plan(const ShardMap& map,
                              const std::vector<uint64_t>& cell_objects,
                              size_t max_moves = 4) const;

  double sigma() const { return sigma_; }

 private:
  double sigma_;
};

}  // namespace ps2

#endif  // PS2_ADJUST_SHARD_BALANCER_H_
