#ifndef PS2_ADJUST_GLOBAL_ADJUST_H_
#define PS2_ADJUST_GLOBAL_ADJUST_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/workload_stats.h"
#include "dispatch/gridt_index.h"
#include "partition/plan.h"

namespace ps2 {

// Global load adjustment (Section V-B): periodically check whether a full
// workload repartitioning pays off on a recent sample; if so, install the
// new strategy *alongside* the old one. Old STS queries keep routing through
// the old strategy, new queries through the new one, and objects through
// both — the paper's "temporary compromise" that avoids a bulk migration.
// Once few old queries remain, the stragglers are re-registered under the
// new strategy and the old one is dropped.
//
// This class owns the double-buffered routing; the embedding system feeds
// it the tuples (see PS2Stream::Publish/Subscribe and the Fig 16 bench).
class DualStrategyRouter {
 public:
  explicit DualStrategyRouter(std::unique_ptr<GridtIndex> primary)
      : primary_(std::move(primary)) {}

  // Installs a repartitioned plan. Subsequent inserts route through the new
  // index; live queries stay pinned to the old one for deletion routing.
  void InstallNewPlan(std::unique_ptr<GridtIndex> next);

  bool InTransition() const { return old_ != nullptr; }
  size_t OldQueryCount() const;

  GridtIndex& primary() { return *primary_; }
  GridtIndex* old_index() { return old_.get(); }

  // Routing. Objects take the union of both strategies' destinations while
  // a transition is in flight.
  void RouteObject(const SpatioTextualObject& o,
                   std::vector<WorkerId>* out) const;
  std::vector<PartitionPlan::QueryRoute> RouteInsert(const STSQuery& q);
  std::vector<PartitionPlan::QueryRoute> RouteDelete(const STSQuery& q);

  // True when the old strategy has drained below `threshold` queries and
  // should be retired. Retirement (re-registering stragglers) is performed
  // by the caller via TakeOldQueriesAndRetire since it must touch workers.
  bool ReadyToRetire(size_t threshold) const {
    return InTransition() && OldQueryCount() <= threshold;
  }

  // Returns (and clears) the remaining old queries; the caller re-routes
  // them through the new strategy and migrates the worker state. Drops the
  // old index.
  std::vector<STSQuery> TakeOldQueriesAndRetire();

  size_t MemoryBytes() const;

 private:
  struct LiveQuery {
    STSQuery query;
    bool old_generation = false;  // registered under the old strategy
  };

  std::unique_ptr<GridtIndex> primary_;
  std::unique_ptr<GridtIndex> old_;
  // All live queries with their registration generation (full queries are
  // kept so stragglers can be re-registered on retirement).
  std::unordered_map<QueryId, LiveQuery> live_;
};

// Decides whether a repartitioning is worthwhile: rebuilds a candidate plan
// on `sample` and compares estimated total load against the current plan.
struct RepartitionDecision {
  bool repartition = false;
  double current_load = 0.0;
  double candidate_load = 0.0;
  PartitionPlan candidate;
};

RepartitionDecision EvaluateRepartition(const PartitionPlan& current,
                                        const WorkloadSample& sample,
                                        const Vocabulary& vocab,
                                        const PartitionConfig& config,
                                        double improvement_threshold = 0.10);

}  // namespace ps2

#endif  // PS2_ADJUST_GLOBAL_ADJUST_H_
