#include "adjust/global_adjust.h"

#include <algorithm>

#include "partition/hybrid.h"

namespace ps2 {

void DualStrategyRouter::InstallNewPlan(std::unique_ptr<GridtIndex> next) {
  // A previous transition must have been retired first; callers check
  // InTransition(). If not, fold the stale old index away by pinning its
  // remaining queries to the current primary (best effort).
  old_ = std::move(primary_);
  primary_ = std::move(next);
  // Every live query was registered in (what is now) the old index.
  for (auto& [id, entry] : live_) entry.old_generation = true;
}

void DualStrategyRouter::RouteObject(const SpatioTextualObject& o,
                                     std::vector<WorkerId>* out) const {
  primary_->RouteObject(o, out);
  if (old_ != nullptr) {
    std::vector<WorkerId> extra;
    old_->RouteObject(o, &extra);
    out->insert(out->end(), extra.begin(), extra.end());
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
}

std::vector<PartitionPlan::QueryRoute> DualStrategyRouter::RouteInsert(
    const STSQuery& q) {
  live_[q.id] = LiveQuery{q, /*old_generation=*/false};
  return primary_->RouteInsert(q);
}

std::vector<PartitionPlan::QueryRoute> DualStrategyRouter::RouteDelete(
    const STSQuery& q) {
  auto it = live_.find(q.id);
  const bool old_gen = it != live_.end() && it->second.old_generation;
  if (it != live_.end()) live_.erase(it);
  if (old_gen && old_ != nullptr) {
    return old_->RouteDelete(q);
  }
  return primary_->RouteDelete(q);
}

size_t DualStrategyRouter::OldQueryCount() const {
  size_t n = 0;
  for (const auto& [id, entry] : live_) n += entry.old_generation ? 1 : 0;
  return n;
}

std::vector<STSQuery> DualStrategyRouter::TakeOldQueriesAndRetire() {
  std::vector<STSQuery> out;
  for (auto& [id, entry] : live_) {
    if (entry.old_generation) {
      out.push_back(entry.query);
      entry.old_generation = false;  // re-registered under the new plan
    }
  }
  old_.reset();
  return out;
}

size_t DualStrategyRouter::MemoryBytes() const {
  size_t bytes = primary_->MemoryBytes();
  if (old_ != nullptr) bytes += old_->MemoryBytes();
  for (const auto& [id, entry] : live_) {
    bytes += entry.query.MemoryBytes() + 32;
  }
  return bytes;
}

RepartitionDecision EvaluateRepartition(const PartitionPlan& current,
                                        const WorkloadSample& sample,
                                        const Vocabulary& vocab,
                                        const PartitionConfig& config,
                                        double improvement_threshold) {
  RepartitionDecision decision;
  decision.current_load =
      EstimatePlanLoad(current, sample, vocab, config.cost).total_load;
  HybridPartitioner hybrid;
  decision.candidate = hybrid.Build(sample, vocab, config);
  decision.candidate_load =
      EstimatePlanLoad(decision.candidate, sample, vocab, config.cost)
          .total_load;
  decision.repartition =
      decision.candidate_load <
      decision.current_load * (1.0 - improvement_threshold);
  return decision;
}

}  // namespace ps2
