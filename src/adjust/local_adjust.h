#ifndef PS2_ADJUST_LOCAL_ADJUST_H_
#define PS2_ADJUST_LOCAL_ADJUST_H_

#include <string>
#include <vector>

#include "adjust/migration.h"
#include "adjust/migration_executor.h"
#include "core/workload_stats.h"
#include "runtime/cluster.h"

namespace ps2 {

// Configuration of local load adjustment (Section V-A).
struct LocalAdjustConfig {
  double sigma = 1.5;            // balance constraint Lmax/Lmin <= sigma
  int p_top_cells = 8;           // Phase I inspects the p most loaded cells
  std::string selector = "GR";   // Phase II algorithm: DP, GR, SI or RA
  CostModel cost;
  // Migration time model: network shipping plus per-query re-index cost.
  double bandwidth_bytes_per_sec = 50e6;
  double per_query_reindex_us = 4.0;
  uint64_t seed = 7;
};

// Outcome of one adjustment attempt.
struct AdjustReport {
  bool triggered = false;       // balance constraint was violated
  WorkerId overloaded = -1;
  WorkerId underloaded = -1;
  double balance_before = 1.0;
  double balance_after = 1.0;
  // Phase I
  int phase1_splits = 0;
  int phase1_merges = 0;
  // Phase II
  MigrationSelection selection;
  size_t queries_moved = 0;
  size_t bytes_migrated = 0;
  double migration_seconds = 0.0;  // selection + shipping + re-indexing
};

// Local load adjustment (Section V-A): when the dispatcher detects that the
// balance constraint is violated, the most loaded worker wo sheds load to
// the least loaded worker wl.
//
// Phase I inspects wo's p most loaded cells: a space-routed cell whose text
// split would lower the total workload is split (one half migrated to wl);
// a text-routed cell whose counterpart lives on wl is merged there when that
// lowers the total workload.
//
// Phase II, if the constraint is still violated, solves Minimum Cost
// Migration (Definition 4) with the configured selector and migrates the
// chosen cells from wo to wl.
//
// The adjuster only *decides*; every movement goes through a
// MigrationExecutor, so the same logic drives both the synchronous runtime
// (inline execution) and the threaded engine (staged live migration).
class LocalLoadAdjuster {
 public:
  explicit LocalLoadAdjuster(const LocalAdjustConfig& config)
      : config_(config), rng_(config.seed) {}

  // Checks the balance constraint over the cluster's current load window
  // and adjusts if necessary. `window` is a recent workload sample used to
  // estimate term-level statistics for Phase I splits. Loads are taken from
  // the cluster's synchronous tallies; movements execute inline.
  AdjustReport MaybeAdjust(Cluster& cluster, const WorkloadSample& window);

  // Core entry point: `loads` are the per-worker Definition-1 loads of the
  // current accounting window (the threaded engine measures them with live
  // per-worker tallies) and `exec` realizes the chosen movements.
  AdjustReport Adjust(Cluster& cluster, const WorkloadSample& window,
                      const std::vector<double>& loads,
                      MigrationExecutor& exec);

  // Collects wo's migratable cells (load Lg per Definition 3 from GI2 cell
  // counters, size Sg = query bytes). Exposed for the migration benchmarks.
  static std::vector<MigratableCell> CollectCells(const Cluster& cluster,
                                                  WorkerId worker);

 private:
  // Phase I helpers; return true when they changed the cluster.
  bool TryTextSplit(Cluster& cluster, const WorkloadSample& window,
                    CellId cell, WorkerId wo, WorkerId wl,
                    MigrationExecutor& exec, AdjustReport* report);
  bool TryMerge(Cluster& cluster, CellId cell, WorkerId wo, WorkerId wl,
                MigrationExecutor& exec, AdjustReport* report);

  LocalAdjustConfig config_;
  Rng rng_;
};

}  // namespace ps2

#endif  // PS2_ADJUST_LOCAL_ADJUST_H_
