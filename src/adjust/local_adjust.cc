#include "adjust/local_adjust.h"

#include <algorithm>

#include "partition/load_estimator.h"

namespace ps2 {

std::vector<MigratableCell> LocalLoadAdjuster::CollectCells(
    const Cluster& cluster, WorkerId worker) {
  std::vector<MigratableCell> cells;
  for (const auto& s : cluster.worker(worker).AllCellStats()) {
    MigratableCell c;
    c.cell = s.cell;
    c.load = CellLoad(s.objects_seen, static_cast<double>(s.num_queries));
    c.size = static_cast<double>(s.query_bytes);
    cells.push_back(c);
  }
  return cells;
}

bool LocalLoadAdjuster::TryTextSplit(Cluster& cluster,
                                     const WorkloadSample& window, CellId cell,
                                     WorkerId wo, WorkerId wl,
                                     MigrationExecutor& exec,
                                     AdjustReport* report) {
  const GridSpec& grid = cluster.router().plan().grid;
  const Rect cell_rect = grid.CellRect(cell);

  // Node-local term statistics from the sample window.
  std::unordered_map<TermId, uint32_t> of, qi;
  uint64_t cell_objects = 0;
  for (const auto& o : window.objects) {
    if (grid.CellOf(o.loc) != cell) continue;
    ++cell_objects;
    for (const TermId t : o.terms) of[t]++;
  }
  uint64_t cell_queries = 0;
  for (const auto& q : window.inserts) {
    if (!q.region.Intersects(cell_rect)) continue;
    ++cell_queries;
    for (const TermId t : q.expr.RoutingTerms(cluster.vocab())) qi[t]++;
  }
  if (cell_objects == 0 || cell_queries == 0) return false;

  // Two-way LPT over term weights.
  std::vector<TermId> terms;
  for (const auto& [t, _] : of) terms.push_back(t);
  for (const auto& [t, _] : qi) {
    if (!of.count(t)) terms.push_back(t);
  }
  if (terms.size() < 2) return false;
  const auto get = [](const std::unordered_map<TermId, uint32_t>& m,
                      TermId t) -> double {
    auto it = m.find(t);
    return it == m.end() ? 0.0 : it->second;
  };
  std::vector<double> weights;
  weights.reserve(terms.size());
  for (const TermId t : terms) {
    weights.push_back(get(of, t) * get(qi, t) + get(of, t) + get(qi, t));
  }
  const std::vector<int> halves = GreedyLpt(weights, 2);

  // Estimate total-workload change of splitting (Definition 1 restricted to
  // the cell): before = c1 * |O| * |Q|; after = sum over halves.
  uint64_t o0 = 0, o1 = 0, q0 = 0, q1 = 0;
  std::unordered_map<TermId, int> half_of_term;
  for (size_t i = 0; i < terms.size(); ++i) half_of_term[terms[i]] = halves[i];
  for (const auto& o : window.objects) {
    if (grid.CellOf(o.loc) != cell) continue;
    bool in0 = false, in1 = false;
    for (const TermId t : o.terms) {
      auto it = half_of_term.find(t);
      if (it == half_of_term.end()) continue;
      (it->second == 0 ? in0 : in1) = true;
    }
    o0 += in0 ? 1 : 0;
    o1 += in1 ? 1 : 0;
  }
  for (const auto& q : window.inserts) {
    if (!q.region.Intersects(cell_rect)) continue;
    bool in0 = false, in1 = false;
    for (const TermId t : q.expr.RoutingTerms(cluster.vocab())) {
      auto it = half_of_term.find(t);
      if (it == half_of_term.end()) continue;
      (it->second == 0 ? in0 : in1) = true;
    }
    q0 += in0 ? 1 : 0;
    q1 += in1 ? 1 : 0;
  }
  const double before = static_cast<double>(cell_objects) *
                        static_cast<double>(cell_queries);
  const double after = static_cast<double>(o0) * q0 +
                       static_cast<double>(o1) * q1;
  if (after >= before) return false;

  // Split; the smaller half (by query count) moves to wl.
  const int moving_half = q0 <= q1 ? 0 : 1;
  std::unordered_map<TermId, WorkerId> term_map;
  for (size_t i = 0; i < terms.size(); ++i) {
    term_map[terms[i]] = halves[i] == moving_half ? wl : wo;
  }
  const auto stats = exec.TextSplitCell(cell, wo, wl, term_map);
  report->queries_moved += stats.queries_moved;
  report->bytes_migrated += stats.bytes;
  return true;
}

bool LocalLoadAdjuster::TryMerge(Cluster& cluster, CellId cell, WorkerId wo,
                                 WorkerId wl, MigrationExecutor& exec,
                                 AdjustReport* report) {
  const CellRoute& route = cluster.router().plan().cells[cell];
  if (!route.IsText()) return false;
  const auto& workers = route.text->workers();
  if (std::find(workers.begin(), workers.end(), wl) == workers.end()) {
    return false;  // wl holds no share of this cell's space region
  }
  // Estimate: merging removes object duplication across the cell's workers
  // but concentrates matching. Using per-worker GI2 counters (Definition 3):
  // before = sum_w no_w * nq_w; after = no_union * nq_total. We approximate
  // no_union by max_w no_w (every object reaching any worker is in the cell).
  double before = 0.0, nq_total = 0.0, no_union = 0.0;
  for (const WorkerId w : workers) {
    const auto s = cluster.worker(w).StatsFor(cell);
    before += CellLoad(s.objects_seen, s.num_queries);
    nq_total += s.num_queries;
    no_union = std::max(no_union, static_cast<double>(s.objects_seen));
  }
  const double after = no_union * nq_total;
  if (after >= before) return false;
  const auto stats = exec.MergeCellTo(cell, wl);
  report->queries_moved += stats.queries_moved;
  report->bytes_migrated += stats.bytes;
  return true;
}

AdjustReport LocalLoadAdjuster::MaybeAdjust(Cluster& cluster,
                                            const WorkloadSample& window) {
  SyncMigrationExecutor exec(cluster);
  return Adjust(cluster, window, cluster.WorkerLoads(config_.cost), exec);
}

AdjustReport LocalLoadAdjuster::Adjust(Cluster& cluster,
                                       const WorkloadSample& window,
                                       const std::vector<double>& loads,
                                       MigrationExecutor& exec) {
  AdjustReport report;
  report.balance_before = BalanceFactor(loads);
  if (report.balance_before <= config_.sigma) {
    report.balance_after = report.balance_before;
    return report;
  }
  report.triggered = true;
  const WorkerId wo = static_cast<WorkerId>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
  const WorkerId wl = static_cast<WorkerId>(
      std::min_element(loads.begin(), loads.end()) - loads.begin());
  report.overloaded = wo;
  report.underloaded = wl;

  // ---- Phase I: split / merge the p most loaded cells of wo.
  std::vector<MigratableCell> cells = CollectCells(cluster, wo);
  std::sort(cells.begin(), cells.end(),
            [](const MigratableCell& a, const MigratableCell& b) {
              return a.load > b.load;
            });
  const size_t p = std::min<size_t>(config_.p_top_cells, cells.size());
  for (size_t i = 0; i < p; ++i) {
    const CellId cell = cells[i].cell;
    const CellRoute& route = cluster.router().plan().cells[cell];
    if (!route.IsText()) {
      if (TryTextSplit(cluster, window, cell, wo, wl, exec, &report)) {
        report.phase1_splits++;
      }
    } else {
      if (TryMerge(cluster, cell, wo, wl, exec, &report)) {
        report.phase1_merges++;
      }
    }
  }

  // ---- Phase II: Minimum Cost Migration if still unbalanced.
  // Loads shifted by Phase I are approximated by the cell loads moved; we
  // recollect cell stats (GI2 counters moved with the queries).
  std::vector<MigratableCell> remaining = CollectCells(cluster, wo);
  double lo = 0.0;
  for (const auto& c : remaining) lo += c.load;
  std::vector<double> others;
  for (int w = 0; w < cluster.num_workers(); ++w) {
    if (w == wo) continue;
    double l = 0.0;
    for (const auto& c : CollectCells(cluster, w)) l += c.load;
    others.push_back(l);
  }
  const double ll = others.empty()
                        ? 0.0
                        : *std::min_element(others.begin(), others.end());
  const double tau = std::max(0.0, (lo - ll) / 2.0);
  if (tau > 0.0) {
    report.selection =
        SelectCells(config_.selector, remaining, tau, rng_);
    for (const CellId cell : report.selection.cells) {
      const auto stats = exec.MigrateCell(cell, wo, wl);
      report.queries_moved += stats.queries_moved;
      report.bytes_migrated += stats.bytes;
    }
  }
  report.migration_seconds =
      report.selection.selection_ms / 1e3 +
      static_cast<double>(report.bytes_migrated) /
          config_.bandwidth_bytes_per_sec +
      static_cast<double>(report.queries_moved) *
          config_.per_query_reindex_us / 1e6;
  // Post-adjust balance. The synchronous runtimes keep the cluster tallies
  // current; the threaded engine does not (its tallies live in per-worker
  // atomics), so fall back to the Definition-3 cell loads, which reflect
  // the post-migration placement in both modes.
  std::vector<double> after = cluster.WorkerLoads(config_.cost);
  bool any = false;
  for (const double l : after) any = any || l > 0.0;
  if (!any) {
    for (int w = 0; w < cluster.num_workers(); ++w) {
      double l = 0.0;
      for (const auto& c : CollectCells(cluster, w)) l += c.load;
      after[w] = l;
    }
  }
  report.balance_after = BalanceFactor(after);
  return report;
}

}  // namespace ps2
