#ifndef PS2_ADJUST_LOAD_CONTROLLER_H_
#define PS2_ADJUST_LOAD_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adjust/global_adjust.h"
#include "adjust/local_adjust.h"
#include "adjust/migration_executor.h"

namespace ps2 {

struct LoadControllerConfig {
  LocalAdjustConfig adjust;
  // Periodically evaluate whether a full repartitioning (Section V-B) would
  // beat local adjustments. Check() only *records* the decision: acting on
  // it (dual-strategy routing) is the embedding runtime's call.
  bool evaluate_global = false;
  size_t global_check_every = 8;  // local checks between global evaluations
  PartitionConfig partition;
  double global_improvement_threshold = 0.10;
};

// The load-adjustment control plane shared by every runtime. The simulator
// and the synchronous PS2Stream facade call Check() inline between tuples;
// ThreadedEngine runs it on a dedicated controller thread against live
// per-worker tallies, with movements staged through its live executor.
// The controller itself is single-threaded — callers serialize Check().
class LoadController {
 public:
  explicit LoadController(const LoadControllerConfig& config);

  // One balance check over externally measured per-worker loads; movements
  // go through `exec`. Returns the adjustment report (triggered == false
  // when the balance constraint holds).
  AdjustReport Check(Cluster& cluster, const std::vector<double>& loads,
                     const WorkloadSample& window, MigrationExecutor& exec);

  // Synchronous convenience: loads from the cluster's tallies, movements
  // applied inline, global evaluation (if configured) run inline too.
  AdjustReport Check(Cluster& cluster, const WorkloadSample& window);

  // Runs the Section V-B repartition evaluation when its cadence is due.
  // Advisory: only records the decision. The threaded engine calls this
  // *outside* its migration critical section — building a candidate plan is
  // far too slow to run while the routing writer lock and the workers' Gi2
  // locks are held. Returns true when a repartition is recommended.
  bool MaybeEvaluateGlobal(Cluster& cluster, const WorkloadSample& window);

  // --- accounting -----------------------------------------------------------
  struct Totals {
    uint64_t checks = 0;
    uint64_t triggered = 0;     // balance violations observed
    uint64_t adjustments = 0;   // checks that actually moved something
    uint64_t cells_moved = 0;
    uint64_t queries_moved = 0;
    uint64_t bytes_moved = 0;
  };
  const Totals& totals() const { return totals_; }
  // The most recent triggered reports (bounded; totals() aggregates all).
  const std::vector<AdjustReport>& history() const { return history_; }
  static constexpr size_t kMaxHistory = 256;

  // Latest global repartition evaluation (nullptr until one ran).
  const RepartitionDecision* last_global_decision() const {
    return global_decision_.get();
  }
  uint64_t global_evaluations() const { return global_evaluations_; }

  const LoadControllerConfig& config() const { return config_; }

 private:
  LoadControllerConfig config_;
  LocalLoadAdjuster adjuster_;
  Totals totals_;
  std::vector<AdjustReport> history_;
  std::unique_ptr<RepartitionDecision> global_decision_;
  uint64_t global_evaluations_ = 0;
};

}  // namespace ps2

#endif  // PS2_ADJUST_LOAD_CONTROLLER_H_
