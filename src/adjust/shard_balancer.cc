#include "adjust/shard_balancer.h"

#include <algorithm>

#include "core/cost_model.h"

namespace ps2 {

std::vector<ShardMove> ShardBalancer::Plan(
    const ShardMap& map, const std::vector<uint64_t>& cell_objects,
    size_t max_moves) const {
  std::vector<ShardMove> moves;
  if (map.num_shards < 2) return moves;

  // Working copies the greedy loop mutates as it commits moves.
  std::vector<ShardId> owner = map.cell_shard;
  std::vector<double> loads(static_cast<size_t>(map.num_shards), 0.0);
  std::vector<size_t> cells_owned(static_cast<size_t>(map.num_shards), 0);
  for (CellId c = 0; c < owner.size(); ++c) {
    const uint64_t n = c < cell_objects.size() ? cell_objects[c] : 0;
    loads[static_cast<size_t>(owner[c])] += static_cast<double>(n);
    ++cells_owned[static_cast<size_t>(owner[c])];
  }

  while (moves.size() < max_moves && BalanceFactor(loads) > sigma_) {
    const size_t hot = static_cast<size_t>(
        std::max_element(loads.begin(), loads.end()) - loads.begin());
    const size_t cool = static_cast<size_t>(
        std::min_element(loads.begin(), loads.end()) - loads.begin());
    if (hot == cool || cells_owned[hot] <= 1) break;

    // Hottest cell of the hot shard; a zero-traffic cell cannot reduce the
    // imbalance, so bail if nothing loaded is movable.
    CellId best_cell = 0;
    uint64_t best_n = 0;
    bool found = false;
    for (CellId c = 0; c < owner.size(); ++c) {
      if (static_cast<size_t>(owner[c]) != hot) continue;
      const uint64_t n = c < cell_objects.size() ? cell_objects[c] : 0;
      if (!found || n > best_n) {
        best_cell = c;
        best_n = n;
        found = true;
      }
    }
    if (!found || best_n == 0) break;

    // Only commit a move that strictly improves the max of the two shards
    // involved — otherwise the greedy loop would bounce a dominant cell
    // back and forth forever.
    const double shipped = static_cast<double>(best_n);
    if (loads[cool] + shipped >= loads[hot]) break;

    moves.push_back(ShardMove{best_cell, static_cast<ShardId>(hot),
                              static_cast<ShardId>(cool)});
    owner[best_cell] = static_cast<ShardId>(cool);
    loads[hot] -= shipped;
    loads[cool] += shipped;
    --cells_owned[hot];
    ++cells_owned[cool];
  }
  return moves;
}

}  // namespace ps2
