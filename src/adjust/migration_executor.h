#ifndef PS2_ADJUST_MIGRATION_EXECUTOR_H_
#define PS2_ADJUST_MIGRATION_EXECUTOR_H_

#include <unordered_map>

#include "runtime/cluster.h"

namespace ps2 {

// The seam between load-adjustment *decisions* and their *execution*. The
// adjusters (LocalLoadAdjuster, and the benches that drive migrations
// directly) issue cell movements through this interface; how a movement is
// realized depends on the runtime:
//   - SyncMigrationExecutor applies it inline on the Cluster (the simulator,
//     the synchronous PS2Stream facade and all unit tests),
//   - ThreadedEngine's live executor stages it as copy -> snapshot publish
//     -> drain -> remove so dispatcher and worker threads never observe a
//     routing table pointing at a worker that lacks the queries.
class MigrationExecutor {
 public:
  virtual ~MigrationExecutor() = default;

  // Semantics mirror the Cluster primitives of the same names.
  virtual MigrationStats MigrateCell(CellId cell, WorkerId from,
                                     WorkerId to) = 0;
  virtual MigrationStats TextSplitCell(
      CellId cell, WorkerId keep, WorkerId to,
      const std::unordered_map<TermId, WorkerId>& term_map) = 0;
  virtual MigrationStats MergeCellTo(CellId cell, WorkerId to) = 0;
};

// Inline execution against the synchronous cluster.
class SyncMigrationExecutor : public MigrationExecutor {
 public:
  explicit SyncMigrationExecutor(Cluster& cluster) : cluster_(cluster) {}

  MigrationStats MigrateCell(CellId cell, WorkerId from, WorkerId to) override {
    return cluster_.MigrateCell(cell, from, to);
  }
  MigrationStats TextSplitCell(
      CellId cell, WorkerId keep, WorkerId to,
      const std::unordered_map<TermId, WorkerId>& term_map) override {
    return cluster_.TextSplitCell(cell, keep, to, term_map);
  }
  MigrationStats MergeCellTo(CellId cell, WorkerId to) override {
    return cluster_.MergeCellTo(cell, to);
  }

 private:
  Cluster& cluster_;
};

}  // namespace ps2

#endif  // PS2_ADJUST_MIGRATION_EXECUTOR_H_
