#ifndef PS2_ADJUST_MIGRATION_H_
#define PS2_ADJUST_MIGRATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "spatial/grid.h"

namespace ps2 {

// One migratable unit: a gridt cell on the overloaded worker, with its load
// Lg (Definition 3: objects seen x average stored queries) and size Sg (the
// bytes of queries that would be shipped).
struct MigratableCell {
  CellId cell = 0;
  double load = 0.0;  // Lg
  double size = 0.0;  // Sg, bytes
};

// Result of selecting cells for migration (Minimum Cost Migration,
// Definition 4: minimize total size subject to total load >= tau).
struct MigrationSelection {
  std::vector<CellId> cells;
  double total_load = 0.0;
  double total_size = 0.0;
  double selection_ms = 0.0;  // wall time spent selecting (Figures 12a, 13)
  std::string algorithm;
};

// Exact dynamic program (Section V-A-1): knapsack over discretized sizes.
// A(i, j) = max load achievable with cells 1..i under size budget j; the
// answer is the smallest j with A(n, j) >= tau. `size_resolution` is the
// byte granularity of the discretization (the paper's DP is exact over
// integral sizes; we discretize since Sg are byte counts — error is at most
// n * size_resolution). Memory and time are O(n * P / size_resolution),
// matching the paper's observation that DP is slow and memory-hungry.
MigrationSelection SelectCellsDP(const std::vector<MigratableCell>& cells,
                                 double tau, double size_resolution = 256.0);

// Greedy GR (Section V-A-2): scan cells in ascending relative cost Sg/Lg;
// cells keeping the running load below tau are accumulated ("GS"); each
// cell that would push the total to >= tau ("GL") completes a candidate
// solution; the cheapest candidate wins.
MigrationSelection SelectCellsGR(const std::vector<MigratableCell>& cells,
                                 double tau);

// Baseline SI: adds cells in descending size order until the load
// requirement is met.
MigrationSelection SelectCellsSI(const std::vector<MigratableCell>& cells,
                                 double tau);

// Baseline RA: adds random cells until the load requirement is met.
MigrationSelection SelectCellsRA(const std::vector<MigratableCell>& cells,
                                 double tau, Rng& rng);

// Dispatch by name ("DP", "GR", "SI", "RA"); RA uses `rng`.
MigrationSelection SelectCells(const std::string& algorithm,
                               const std::vector<MigratableCell>& cells,
                               double tau, Rng& rng);

}  // namespace ps2

#endif  // PS2_ADJUST_MIGRATION_H_
