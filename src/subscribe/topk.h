#ifndef PS2_SUBSCRIBE_TOPK_H_
#define PS2_SUBSCRIBE_TOPK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "api/delivery.h"
#include "subscribe/expiry_wheel.h"
#include "subscribe/topk_state.h"

namespace ps2 {

// Centralized admission for continuous top-k subscriptions.
//
// Workers (and, in fabric mode, remote shards) emit every positive-score
// candidate; admission into the bounded per-query heap happens HERE, at the
// delivery router — the single point all execution modes converge on after
// the dedup window. That choice is what makes top-k results exact at any
// shard/worker count: the held set is a pure function of the deduplicated
// candidate set and the event-time watermark (score-desc, object-id-desc
// total order), so it cannot depend on which worker saw which candidate or
// in which order candidates raced in.
//
//   - A candidate better than the heap's worst evicts it (the evictee stays
//     buffered while live — it may be re-admitted when a held entry
//     expires).
//   - Objects with a TTL expire when the watermark (max posted object
//     timestamp, advanced by the facade) passes timestamp + ttl; expiry
//     re-admits the best buffered candidate. The ExpiryWheel schedules
//     those re-checks so watermark advances never scan live candidates.
//   - A (query, object) pair is delivered at most once, on first admission
//     (eviction is not retracted; re-admission of an already-delivered
//     candidate is silent).
//
// Thread-safe; `active()` is a lock-free fast path so workloads with no
// top-k subscriptions pay one relaxed load per delivery batch.
class TopKCoordinator {
 public:
  // Total order over candidates of one query: score desc, object id desc.
  // Object ids are unique per query (dedup window), so this is strict.
  static bool Better(double a_score, ObjectId a_id, double b_score,
                     ObjectId b_id) {
    if (a_score != b_score) return a_score > b_score;
    return a_id > b_id;
  }

  // --- control plane (facade) ----------------------------------------------
  // Arms admission state for a top-k query (idempotent; existing candidates
  // survive a re-register). Must happen before the query can produce
  // candidates — the facade registers before routing/indexing.
  void Register(QueryId id, uint32_t k);
  void Forget(QueryId id);

  // --- data plane (delivery router) ----------------------------------------
  bool active() const {
    return num_states_.load(std::memory_order_acquire) > 0;
  }
  bool Owns(QueryId id) const;

  // Offers one deduplicated candidate (score/expire ride in `d`). Returns
  // true when the candidate is admitted now and should be delivered;
  // buffered, expired-on-arrival and unknown-query candidates return false.
  bool Offer(const Delivery& d);

  // Advances the event-time watermark (monotonic; stale values no-op) and
  // appends the promotions it causes — buffered candidates admitted into
  // vacancies left by expiry, never delivered before — to *promoted.
  void AdvanceWatermark(int64_t watermark_us,
                        std::vector<Delivery>* promoted);
  int64_t watermark() const;

  // --- introspection / persistence -----------------------------------------
  // The query's held entries, best-first. Empty for unknown ids.
  std::vector<TopKEntry> Snapshot(QueryId id) const;
  // Buffered (live, unheld) entry count across all queries.
  size_t buffered() const;

  TopKCheckpoint Checkpoint() const;
  // Replaces candidate state from a checkpoint. Queries must already be
  // Register()ed (k is not part of the blob); entries for unregistered
  // queries are dropped.
  void Restore(const TopKCheckpoint& checkpoint);

 private:
  struct Entry {
    ObjectId object_id = 0;
    double score = 0.0;
    int64_t expire_us = 0;
    int64_t publish_us = 0;
    bool delivered = false;
  };
  struct QueryState {
    uint32_t k = 0;
    std::vector<Entry> held;    // sorted best-first, size <= k
    std::vector<Entry> buffer;  // live candidates outside the heap
  };

  static bool BetterEntry(const Entry& a, const Entry& b) {
    return Better(a.score, a.object_id, b.score, b.object_id);
  }
  static bool Expired(const Entry& e, int64_t watermark_us) {
    return e.expire_us != 0 && e.expire_us <= watermark_us;
  }

  // Inserts into `held` keeping best-first order.
  static void InsertHeld(QueryState& qs, Entry e);
  // Refills vacancies from the buffer, appending never-delivered
  // admissions to *promoted (locked).
  void PromoteLocked(QueryId id, QueryState& qs,
                     std::vector<Delivery>* promoted);

  mutable std::mutex mu_;
  std::unordered_map<QueryId, QueryState> states_;
  ExpiryWheel wheel_;
  int64_t watermark_us_ = 0;
  std::atomic<size_t> num_states_{0};
};

}  // namespace ps2

#endif  // PS2_SUBSCRIBE_TOPK_H_
