#ifndef PS2_SUBSCRIBE_TOPK_STATE_H_
#define PS2_SUBSCRIBE_TOPK_STATE_H_

#include <cstdint>
#include <vector>

#include "core/query.h"

namespace ps2 {

// One continuous top-k candidate as persisted / introspected: the scored
// (query, object) pair plus the admission bookkeeping. `held` marks entries
// currently in the query's result heap (vs buffered for re-admission);
// `delivered` marks pairs the subscriber was already notified about, so a
// restore never re-delivers across a promotion.
struct TopKEntry {
  QueryId query_id = 0;
  ObjectId object_id = 0;
  double score = 0.0;
  int64_t expire_us = 0;   // event-time expiry; 0 = never
  int64_t publish_us = 0;  // original publish stamp, kept for promotions
  bool held = false;
  bool delivered = false;
};

// Flattened coordinator state for checkpoints: the event-time watermark and
// every live candidate of every top-k query. Per-query k is NOT stored here
// — it rides in the (versioned) query records, and TopKCoordinator::Restore
// requires the queries to be re-registered first.
struct TopKCheckpoint {
  int64_t watermark_us = 0;
  std::vector<TopKEntry> entries;

  bool empty() const { return watermark_us == 0 && entries.empty(); }
};

}  // namespace ps2

#endif  // PS2_SUBSCRIBE_TOPK_STATE_H_
