#ifndef PS2_SUBSCRIBE_SPEC_H_
#define PS2_SUBSCRIBE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.h"
#include "core/query.h"
#include "text/vocabulary.h"

namespace ps2 {

// A typed subscription request, the client-facing generalization of the
// boolean expression + region pair. Exactly one text payload is meaningful
// per class:
//   kBoolean    — `expression` in the BoolExpr grammar ("a AND (b OR c)")
//   kSimilarity — `terms` + `tau`: match when BinaryCosineSimilarity(object
//                 terms, spec terms) >= tau, tau in (0, 1]
//   kTopK       — `terms` + `k`: the query continuously holds its k
//                 best-scoring unexpired objects, k >= 1
// Build with the factory helpers; validation happens in CompileSpec, which
// rejects malformed specs with a field-positional kInvalidArgument instead
// of clamping.
struct SubscriptionSpec {
  SubscriptionClass cls = SubscriptionClass::kBoolean;
  std::string expression;          // kBoolean
  std::vector<std::string> terms;  // kSimilarity / kTopK
  Rect region;
  double tau = 0.0;  // kSimilarity
  uint32_t k = 0;    // kTopK

  static SubscriptionSpec Boolean(std::string expression, Rect region) {
    SubscriptionSpec s;
    s.cls = SubscriptionClass::kBoolean;
    s.expression = std::move(expression);
    s.region = region;
    return s;
  }
  static SubscriptionSpec Similarity(std::vector<std::string> terms,
                                     double tau, Rect region) {
    SubscriptionSpec s;
    s.cls = SubscriptionClass::kSimilarity;
    s.terms = std::move(terms);
    s.tau = tau;
    s.region = region;
    return s;
  }
  static SubscriptionSpec TopK(std::vector<std::string> terms, uint32_t k,
                               Rect region) {
    SubscriptionSpec s;
    s.cls = SubscriptionClass::kTopK;
    s.terms = std::move(terms);
    s.k = k;
    s.region = region;
    return s;
  }
};

// Human-readable class name ("boolean" / "similarity" / "top-k"), for
// diagnostics and tooling.
const char* SubscriptionClassName(SubscriptionClass cls);

// Validates `spec` and compiles it into `*out` (everything but the id,
// which the facade assigns), interning terms into `vocab`. Scored classes
// store their term set as a single OR clause so the routing layer treats
// them like any other query with complete routing (see STSQuery).
//
// Errors are kInvalidArgument with a field-positional message — spec.tau
// out of (0, 1], spec.k == 0, spec.terms empty or containing an empty
// term, spec.expression syntax errors — never a silent clamp.
Status CompileSpec(const SubscriptionSpec& spec, Vocabulary& vocab,
                   STSQuery* out);

// Validates the scored-class invariants on a pre-built query (the raw
// STSQuery Subscribe overload): tau/k bounds, a non-empty term set, and the
// single-OR-clause term layout CompileSpec produces. Boolean queries pass
// unconditionally (the facade already checks their expression).
Status ValidateQuerySpec(const STSQuery& q);

}  // namespace ps2

#endif  // PS2_SUBSCRIBE_SPEC_H_
