#include "subscribe/topk.h"

#include <algorithm>

namespace ps2 {

void TopKCoordinator::Register(QueryId id, uint32_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryState& qs = states_[id];
  if (qs.k == 0) {
    num_states_.store(states_.size(), std::memory_order_release);
  }
  qs.k = k;
}

void TopKCoordinator::Forget(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (states_.erase(id) != 0) {
    // Wheel entries for the dead query go stale; PopDue re-checks.
    num_states_.store(states_.size(), std::memory_order_release);
  }
}

bool TopKCoordinator::Owns(QueryId id) const {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return states_.find(id) != states_.end();
}

void TopKCoordinator::InsertHeld(QueryState& qs, Entry e) {
  const auto pos = std::upper_bound(
      qs.held.begin(), qs.held.end(), e,
      [](const Entry& a, const Entry& b) { return BetterEntry(a, b); });
  qs.held.insert(pos, std::move(e));
}

bool TopKCoordinator::Offer(const Delivery& d) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(d.query_id);
  if (it == states_.end()) return false;
  QueryState& qs = it->second;
  Entry e;
  e.object_id = d.object_id;
  e.score = d.score;
  e.expire_us = d.expire_us;
  e.publish_us = d.publish_us;
  // Dead on arrival (an async candidate can race a watermark advance past
  // its expiry): drop. The synchronous reference sees the same watermark at
  // the same schedule point, so final heaps still agree.
  if (Expired(e, watermark_us_)) return false;
  if (e.expire_us != 0) wheel_.Schedule(e.expire_us, d.query_id);
  if (qs.held.size() < qs.k) {
    e.delivered = true;
    InsertHeld(qs, std::move(e));
    return true;
  }
  Entry& worst = qs.held.back();
  if (BetterEntry(e, worst)) {
    // The evictee was already delivered; it stays buffered while live so an
    // expiry above it can bring it back (silently — no re-delivery).
    qs.buffer.push_back(std::move(worst));
    qs.held.pop_back();
    e.delivered = true;
    InsertHeld(qs, std::move(e));
    return true;
  }
  qs.buffer.push_back(std::move(e));
  return false;
}

void TopKCoordinator::PromoteLocked(QueryId id, QueryState& qs,
                                    std::vector<Delivery>* promoted) {
  while (qs.held.size() < qs.k && !qs.buffer.empty()) {
    auto best = qs.buffer.begin();
    for (auto it = std::next(best); it != qs.buffer.end(); ++it) {
      if (BetterEntry(*it, *best)) best = it;
    }
    Entry e = std::move(*best);
    qs.buffer.erase(best);
    if (!e.delivered && promoted != nullptr) {
      Delivery d;
      d.query_id = id;
      d.object_id = e.object_id;
      d.publish_us = e.publish_us;
      d.score = e.score;
      d.expire_us = e.expire_us;
      promoted->push_back(d);
    }
    e.delivered = true;
    InsertHeld(qs, std::move(e));
  }
}

void TopKCoordinator::AdvanceWatermark(int64_t watermark_us,
                                       std::vector<Delivery>* promoted) {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (watermark_us <= watermark_us_) return;
  watermark_us_ = watermark_us;
  std::vector<QueryId> due;
  wheel_.PopDue(watermark_us, &due);
  for (const QueryId id : due) {
    const auto it = states_.find(id);
    if (it == states_.end()) continue;  // stale wheel hint
    QueryState& qs = it->second;
    qs.buffer.erase(std::remove_if(qs.buffer.begin(), qs.buffer.end(),
                                   [&](const Entry& e) {
                                     return Expired(e, watermark_us_);
                                   }),
                    qs.buffer.end());
    const size_t before = qs.held.size();
    qs.held.erase(std::remove_if(qs.held.begin(), qs.held.end(),
                                 [&](const Entry& e) {
                                   return Expired(e, watermark_us_);
                                 }),
                  qs.held.end());
    if (qs.held.size() < before) PromoteLocked(id, qs, promoted);
  }
}

int64_t TopKCoordinator::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_us_;
}

std::vector<TopKEntry> TopKCoordinator::Snapshot(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TopKEntry> out;
  const auto it = states_.find(id);
  if (it == states_.end()) return out;
  out.reserve(it->second.held.size());
  for (const Entry& e : it->second.held) {
    TopKEntry t;
    t.query_id = id;
    t.object_id = e.object_id;
    t.score = e.score;
    t.expire_us = e.expire_us;
    t.publish_us = e.publish_us;
    t.held = true;
    t.delivered = e.delivered;
    out.push_back(t);
  }
  return out;
}

size_t TopKCoordinator::buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, qs] : states_) n += qs.buffer.size();
  return n;
}

TopKCheckpoint TopKCoordinator::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  TopKCheckpoint cp;
  cp.watermark_us = watermark_us_;
  for (const auto& [id, qs] : states_) {
    for (const Entry& e : qs.held) {
      cp.entries.push_back(TopKEntry{id, e.object_id, e.score, e.expire_us,
                                     e.publish_us, /*held=*/true,
                                     e.delivered});
    }
    for (const Entry& e : qs.buffer) {
      cp.entries.push_back(TopKEntry{id, e.object_id, e.score, e.expire_us,
                                     e.publish_us, /*held=*/false,
                                     e.delivered});
    }
  }
  return cp;
}

void TopKCoordinator::Restore(const TopKCheckpoint& checkpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  watermark_us_ = checkpoint.watermark_us;
  for (auto& [id, qs] : states_) {
    qs.held.clear();
    qs.buffer.clear();
  }
  wheel_ = ExpiryWheel();
  for (const TopKEntry& t : checkpoint.entries) {
    const auto it = states_.find(t.query_id);
    if (it == states_.end()) continue;  // query no longer live
    Entry e;
    e.object_id = t.object_id;
    e.score = t.score;
    e.expire_us = t.expire_us;
    e.publish_us = t.publish_us;
    e.delivered = t.delivered;
    if (Expired(e, watermark_us_)) continue;
    if (e.expire_us != 0) wheel_.Schedule(e.expire_us, t.query_id);
    if (t.held) {
      InsertHeld(it->second, std::move(e));
    } else {
      it->second.buffer.push_back(std::move(e));
    }
  }
}

}  // namespace ps2
