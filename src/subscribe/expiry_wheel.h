#ifndef PS2_SUBSCRIBE_EXPIRY_WHEEL_H_
#define PS2_SUBSCRIBE_EXPIRY_WHEEL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/query.h"

namespace ps2 {

// Event-time expiry schedule for the top-k coordinator: which queries hold
// a candidate that dies at which stamp. A classic timer wheel trades
// precision for O(1) buckets; here expiry must be *exact* (the equivalence
// suites compare heaps against a reference at precise watermarks), so the
// wheel collapses to an ordered bucket map keyed by the expiry stamp —
// entries with one stamp share a bucket, and advancing the watermark pops
// whole due buckets instead of scanning live candidates.
//
// Entries are hints, not ownership: a popped query id may be stale (query
// cancelled, candidate already evicted) — the coordinator re-checks against
// its own state. Duplicate (stamp, query) entries are coalesced.
class ExpiryWheel {
 public:
  // Schedules `id` for a re-check when the watermark reaches `expire_us`.
  // expire_us == 0 ("never") is the caller's responsibility to filter.
  // The linear scan keeps the coalescing exact for interleaved re-schedules
  // of the same (stamp, query); buckets hold only queries whose candidates
  // share one expiry stamp, so the scan stays short in practice.
  void Schedule(int64_t expire_us, QueryId id) {
    std::vector<QueryId>& bucket = buckets_[expire_us];
    if (std::find(bucket.begin(), bucket.end(), id) == bucket.end()) {
      bucket.push_back(id);
    }
  }

  // Pops every bucket whose stamp is <= `watermark_us`, appending the
  // (possibly stale, possibly duplicated) query ids to *due.
  void PopDue(int64_t watermark_us, std::vector<QueryId>* due) {
    auto it = buckets_.begin();
    while (it != buckets_.end() && it->first <= watermark_us) {
      due->insert(due->end(), it->second.begin(), it->second.end());
      it = buckets_.erase(it);
    }
  }

  bool empty() const { return buckets_.empty(); }
  size_t size() const { return buckets_.size(); }

 private:
  std::map<int64_t, std::vector<QueryId>> buckets_;
};

}  // namespace ps2

#endif  // PS2_SUBSCRIBE_EXPIRY_WHEEL_H_
