#include "subscribe/spec.h"

#include <algorithm>
#include <cctype>

namespace ps2 {

const char* SubscriptionClassName(SubscriptionClass cls) {
  switch (cls) {
    case SubscriptionClass::kBoolean:
      return "boolean";
    case SubscriptionClass::kSimilarity:
      return "similarity";
    case SubscriptionClass::kTopK:
      return "top-k";
  }
  return "unknown";
}

namespace {

// Interns the scored-class term set as one OR clause. An empty set or an
// empty term is a spec error, reported with the offending position.
Status CompileTerms(const SubscriptionSpec& spec, Vocabulary& vocab,
                    BoolExpr* out) {
  if (spec.terms.empty()) {
    return Status::InvalidArgument("spec.terms: empty term set (a " +
                                   std::string(SubscriptionClassName(spec.cls)) +
                                   " subscription needs at least one term)");
  }
  std::vector<TermId> ids;
  ids.reserve(spec.terms.size());
  for (size_t i = 0; i < spec.terms.size(); ++i) {
    std::string term = spec.terms[i];
    std::transform(term.begin(), term.end(), term.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    if (term.empty()) {
      return Status::InvalidArgument(
          "spec.terms[" + std::to_string(i) + "]: empty term");
    }
    ids.push_back(vocab.Intern(term));
  }
  *out = BoolExpr::Or(std::move(ids));
  return Status::Ok();
}

}  // namespace

Status CompileSpec(const SubscriptionSpec& spec, Vocabulary& vocab,
                   STSQuery* out) {
  STSQuery q;
  q.cls = spec.cls;
  q.region = spec.region;
  switch (spec.cls) {
    case SubscriptionClass::kBoolean: {
      std::string parse_error;
      q.expr = BoolExpr::Parse(spec.expression, vocab, &parse_error);
      if (q.expr.has_error()) {
        return Status::InvalidArgument("spec.expression \"" +
                                       spec.expression + "\": " + parse_error);
      }
      if (q.expr.empty()) {
        return Status::InvalidArgument("spec.expression \"" +
                                       spec.expression + "\" has no keywords");
      }
      break;
    }
    case SubscriptionClass::kSimilarity: {
      // tau = 0 would match on zero term overlap, which breaks the
      // term-routing completeness argument — reject, don't clamp.
      if (!(spec.tau > 0.0) || spec.tau > 1.0) {
        return Status::InvalidArgument(
            "spec.tau: must be in (0, 1], got " + std::to_string(spec.tau));
      }
      if (const Status st = CompileTerms(spec, vocab, &q.expr); !st.ok()) {
        return st;
      }
      q.tau = spec.tau;
      break;
    }
    case SubscriptionClass::kTopK: {
      if (spec.k == 0) {
        return Status::InvalidArgument(
            "spec.k: must be >= 1, got 0 (a top-k subscription holding "
            "nothing is a misconfiguration, not a degenerate case)");
      }
      if (const Status st = CompileTerms(spec, vocab, &q.expr); !st.ok()) {
        return st;
      }
      q.k = spec.k;
      break;
    }
  }
  *out = std::move(q);
  return Status::Ok();
}

Status ValidateQuerySpec(const STSQuery& q) {
  if (q.cls == SubscriptionClass::kBoolean) return Status::Ok();
  if (q.expr.empty() || q.expr.clauses().size() != 1 ||
      q.expr.clauses()[0].empty()) {
    return Status::InvalidArgument(
        "query.expr: a scored subscription stores its term set as exactly "
        "one OR clause (build it with BoolExpr::Or or CompileSpec)");
  }
  if (q.cls == SubscriptionClass::kSimilarity &&
      (!(q.tau > 0.0) || q.tau > 1.0)) {
    return Status::InvalidArgument("query.tau: must be in (0, 1], got " +
                                   std::to_string(q.tau));
  }
  if (q.cls == SubscriptionClass::kTopK && q.k == 0) {
    return Status::InvalidArgument("query.k: must be >= 1, got 0");
  }
  return Status::Ok();
}

}  // namespace ps2
