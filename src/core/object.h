#ifndef PS2_CORE_OBJECT_H_
#define PS2_CORE_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/geo.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ps2 {

using ObjectId = uint64_t;

// A spatio-textual object o = <text, loc> (Section III-A): one element of
// the published data stream, e.g. a geo-tagged tweet. Text is stored as a
// sorted, deduplicated vector of TermIds so that boolean matching and
// routing are binary searches.
struct SpatioTextualObject {
  ObjectId id = 0;
  Point loc;
  std::vector<TermId> terms;  // sorted ascending, unique

  // Event-time timestamp in microseconds (stream order / replay position).
  int64_t timestamp_us = 0;

  // Optional lifetime: the object stops being eligible for continuous
  // (top-k) result sets once the stream's event-time watermark passes
  // timestamp_us + ttl_us. 0 means the object never expires. Expiry is
  // event-time, not wall-clock, so replays behave identically.
  int64_t ttl_us = 0;

  // Builds an object from raw text, tokenizing against `vocab` (interning
  // new terms). Does not update vocabulary counts.
  static SpatioTextualObject FromText(ObjectId id, Point loc,
                                      const std::string& text,
                                      Vocabulary& vocab,
                                      const Tokenizer& tokenizer = Tokenizer());

  // Builds from already-known term ids (normalizes ordering).
  static SpatioTextualObject FromTerms(ObjectId id, Point loc,
                                       std::vector<TermId> terms);

  bool ContainsTerm(TermId t) const;

  // Approximate in-memory footprint (for worker memory accounting).
  size_t MemoryBytes() const {
    return sizeof(SpatioTextualObject) + terms.capacity() * sizeof(TermId);
  }
};

}  // namespace ps2

#endif  // PS2_CORE_OBJECT_H_
