#ifndef PS2_CORE_COST_MODEL_H_
#define PS2_CORE_COST_MODEL_H_

#include <cstdint>
#include <vector>

namespace ps2 {

// Per-operation cost constants of Definition 1. The paper leaves c1..c4
// abstract ("average cost of ..."); the defaults below are the relative
// magnitudes we calibrated from GI2 microbenchmarks (bench_micro_gi2):
// matching one object against one indexed query is the unit, handling an
// object (grid lookup + result emission) costs ~5 units, an insertion ~8
// (index append across cells), a deletion ~2 (tombstone insert).
struct CostModel {
  double c1 = 1.0;  // object-vs-query matching check
  double c2 = 5.0;  // per-object handling overhead
  double c3 = 8.0;  // per-insertion handling
  double c4 = 2.0;  // per-deletion handling
};

// Tallies of the workload routed to one worker over an accounting period.
struct WorkerLoadTally {
  uint64_t objects = 0;     // |Oi|
  uint64_t inserts = 0;     // |Qi_i|
  uint64_t deletes = 0;     // |Qd_i|

  void Clear() { objects = inserts = deletes = 0; }
};

// Load of one worker (Definition 1):
//   Li = c1*|Oi|*|Qi_i| + c2*|Oi| + c3*|Qi_i| + c4*|Qd_i|
double WorkerLoad(const CostModel& cm, const WorkerLoadTally& t);

// Load of one gridt cell (Definition 3): Lg = no * nq, where no is the
// number of objects falling in the cell and nq the average number of
// queries stored in it over the period.
double CellLoad(uint64_t num_objects, double avg_num_queries);

// Balance factor Lmax/Lmin over per-worker loads; returns +inf when some
// worker has zero load and another does not, 1.0 when all are zero. The
// paper's constraint is balance <= sigma.
double BalanceFactor(const std::vector<double>& loads);

// Sum of loads.
double TotalLoad(const std::vector<double>& loads);

}  // namespace ps2

#endif  // PS2_CORE_COST_MODEL_H_
