#include "core/workload_stats.h"

namespace ps2 {

Rect WorkloadSample::Bounds() const {
  Rect b;
  for (const auto& o : objects) b.Expand(o.loc);
  for (const auto& q : inserts) b.Expand(q.region);
  for (const auto& q : deletes) b.Expand(q.region);
  return b;
}

TermStats TermStats::Compute(const WorkloadSample& sample,
                             const Vocabulary& vocab) {
  TermStats stats;
  for (const auto& o : sample.objects) {
    for (const TermId t : o.terms) stats.object_freq[t]++;
  }
  for (const auto& q : sample.inserts) {
    for (const TermId t : q.expr.RoutingTerms(vocab)) {
      stats.query_routing_freq[t]++;
    }
  }
  stats.terms.reserve(stats.object_freq.size());
  for (const auto& [t, _] : stats.object_freq) stats.terms.push_back(t);
  for (const auto& [t, _] : stats.query_routing_freq) {
    if (!stats.object_freq.count(t)) stats.terms.push_back(t);
  }
  return stats;
}

uint64_t TermStats::ObjectFreq(TermId t) const {
  auto it = object_freq.find(t);
  return it == object_freq.end() ? 0 : it->second;
}

uint64_t TermStats::QueryRoutingFreq(TermId t) const {
  auto it = query_routing_freq.find(t);
  return it == query_routing_freq.end() ? 0 : it->second;
}

void AccumulateVocabularyCounts(const WorkloadSample& sample,
                                Vocabulary& vocab) {
  for (const auto& o : sample.objects) {
    for (const TermId t : o.terms) vocab.AddCount(t);
  }
}

}  // namespace ps2
