#include "core/query.h"

namespace ps2 {
// STSQuery and StreamTuple are header-only aggregates; this translation unit
// exists to anchor the vtable-free types in the library and keep one .cc per
// header per project convention.
}  // namespace ps2
