#ifndef PS2_CORE_WORKLOAD_STATS_H_
#define PS2_CORE_WORKLOAD_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/geo.h"
#include "core/query.h"
#include "text/vocabulary.h"

namespace ps2 {

// A sample of the recent workload: the input every partitioner consumes
// (Definition 2 takes "a set of spatio-textual objects O, a set of STS query
// insertion requests Qi and a set of STS query deletion requests Qd").
// In production the dispatcher collects this by reservoir-sampling the
// stream; in benchmarks the generators produce it directly.
struct WorkloadSample {
  std::vector<SpatioTextualObject> objects;
  std::vector<STSQuery> inserts;
  std::vector<STSQuery> deletes;

  // Spatial extent covering all object locations and query regions; the
  // routing grid spans exactly this rectangle.
  Rect Bounds() const;

  bool empty() const { return objects.empty() && inserts.empty(); }
};

// Per-term statistics over a workload sample, shared by the text
// partitioners and the hybrid algorithm.
struct TermStats {
  // Number of objects containing each term.
  std::unordered_map<TermId, uint64_t> object_freq;
  // Number of insert queries whose routing terms include each term.
  std::unordered_map<TermId, uint64_t> query_routing_freq;
  // All terms observed in either map.
  std::vector<TermId> terms;

  static TermStats Compute(const WorkloadSample& sample,
                           const Vocabulary& vocab);

  uint64_t ObjectFreq(TermId t) const;
  uint64_t QueryRoutingFreq(TermId t) const;
};

// Populates vocabulary counts from the objects of a sample (the frequency
// profile dispatchers key "least frequent keyword" decisions on).
void AccumulateVocabularyCounts(const WorkloadSample& sample,
                                Vocabulary& vocab);

}  // namespace ps2

#endif  // PS2_CORE_WORKLOAD_STATS_H_
