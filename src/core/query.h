#ifndef PS2_CORE_QUERY_H_
#define PS2_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/geo.h"
#include "core/object.h"
#include "text/bool_expr.h"
#include "text/similarity.h"

namespace ps2 {

using QueryId = uint64_t;

// Subscription classes. kBoolean is the paper's strict predicate (CNF over
// terms + region containment). kSimilarity relaxes the text side to a
// binary-weight cosine score against the subscription's term set, matching
// when score >= tau. kTopK continuously maintains the k best-scoring live
// objects per query (admission happens centrally, not at the matcher; the
// matcher emits every positive-score candidate).
enum class SubscriptionClass : uint8_t {
  kBoolean = 0,
  kSimilarity = 1,
  kTopK = 2,
};

// A Spatio-Textual Subscription (STS) query q = <K, R> (Definition in
// Section III-A): a boolean keyword expression over terms plus a rectangular
// region of interest. An object matches iff its location lies in `region`
// and its terms satisfy `expr`.
//
// Scored classes (kSimilarity/kTopK) reuse `expr` as their term-set store:
// the terms sit in a single OR clause, so RoutingTerms() returns the whole
// set and routing stays complete (a positive cosine score requires at least
// one shared term; tau = 0 is rejected at the API boundary).
struct STSQuery {
  QueryId id = 0;
  BoolExpr expr;
  Rect region;
  SubscriptionClass cls = SubscriptionClass::kBoolean;
  double tau = 0.0;  // kSimilarity: match threshold in (0, 1]
  uint32_t k = 0;    // kTopK: result-heap bound, >= 1

  bool scored() const { return cls != SubscriptionClass::kBoolean; }

  // The scored classes' term set: the single OR clause `expr` stores
  // (sorted, deduplicated by BoolExpr::Cnf). Only meaningful when scored().
  const std::vector<TermId>& ScoredTerms() const { return expr.clauses()[0]; }

  // Candidate test, ignoring top-k admission: kBoolean is the strict
  // predicate, kSimilarity is region + score >= tau, kTopK is region + any
  // positive score (admission into the bounded heap is centralized
  // downstream). Inline: this sits on the per-posting match path.
  bool Matches(const SpatioTextualObject& o) const {
    if (cls == SubscriptionClass::kBoolean) {
      return region.Contains(o.loc) && expr.Matches(o.terms);
    }
    double score = 0.0;
    return Evaluate(o, &score);
  }

  // Same test, also reporting the cosine score (0 for kBoolean).
  bool Evaluate(const SpatioTextualObject& o, double* score) const {
    *score = 0.0;
    if (!region.Contains(o.loc)) return false;
    switch (cls) {
      case SubscriptionClass::kBoolean:
        return expr.Matches(o.terms);
      case SubscriptionClass::kSimilarity:
        *score = BinaryCosineSimilarity(o.terms, ScoredTerms());
        return *score >= tau;
      case SubscriptionClass::kTopK:
        *score = BinaryCosineSimilarity(o.terms, ScoredTerms());
        return *score > 0.0;
    }
    return false;
  }

  // Size in bytes used for migration cost accounting (Sg in Definition 4 is
  // "the total size of the queries in cell g").
  size_t MemoryBytes() const {
    return sizeof(STSQuery) + expr.TermSlots() * sizeof(TermId) +
           expr.clauses().size() * sizeof(std::vector<TermId>);
  }
};

// The three tuple kinds flowing through the system: publish a spatio-textual
// object, insert a subscription, delete a subscription (Section III).
enum class TupleKind : uint8_t {
  kObject = 0,
  kQueryInsert = 1,
  kQueryDelete = 2,
};

// One element of the merged input stream. Exactly one of {object, query} is
// meaningful depending on `kind`; deletions carry the full query (the paper
// notes "the request contains complete information of the STS query") so
// dispatchers can route them like insertions.
struct StreamTuple {
  TupleKind kind = TupleKind::kObject;
  SpatioTextualObject object;
  STSQuery query;

  // Event-time in microseconds since the stream epoch.
  int64_t event_time_us = 0;

  static StreamTuple OfObject(SpatioTextualObject o) {
    StreamTuple t;
    t.kind = TupleKind::kObject;
    t.event_time_us = o.timestamp_us;
    t.object = std::move(o);
    return t;
  }
  static StreamTuple OfInsert(STSQuery q, int64_t time_us = 0) {
    StreamTuple t;
    t.kind = TupleKind::kQueryInsert;
    t.query = std::move(q);
    t.event_time_us = time_us;
    return t;
  }
  static StreamTuple OfDelete(STSQuery q, int64_t time_us = 0) {
    StreamTuple t;
    t.kind = TupleKind::kQueryDelete;
    t.query = std::move(q);
    t.event_time_us = time_us;
    return t;
  }
};

// A (query, object) match produced by a worker and deduplicated by the
// merger before delivery to the subscriber. `score`/`expire_us` ride along
// for the scored subscription classes (0 for boolean matches; expire 0
// means "never expires") but identity and ordering stay id-only — the same
// pair produced by two paths is one match regardless of stamps.
struct MatchResult {
  QueryId query_id = 0;
  ObjectId object_id = 0;
  double score = 0.0;
  int64_t expire_us = 0;

  friend bool operator==(const MatchResult& a, const MatchResult& b) {
    return a.query_id == b.query_id && a.object_id == b.object_id;
  }
  friend bool operator<(const MatchResult& a, const MatchResult& b) {
    if (a.query_id != b.query_id) return a.query_id < b.query_id;
    return a.object_id < b.object_id;
  }
};

}  // namespace ps2

#endif  // PS2_CORE_QUERY_H_
