#ifndef PS2_CORE_QUERY_H_
#define PS2_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/geo.h"
#include "core/object.h"
#include "text/bool_expr.h"

namespace ps2 {

using QueryId = uint64_t;

// A Spatio-Textual Subscription (STS) query q = <K, R> (Definition in
// Section III-A): a boolean keyword expression over terms plus a rectangular
// region of interest. An object matches iff its location lies in `region`
// and its terms satisfy `expr`.
struct STSQuery {
  QueryId id = 0;
  BoolExpr expr;
  Rect region;

  bool Matches(const SpatioTextualObject& o) const {
    return region.Contains(o.loc) && expr.Matches(o.terms);
  }

  // Size in bytes used for migration cost accounting (Sg in Definition 4 is
  // "the total size of the queries in cell g").
  size_t MemoryBytes() const {
    return sizeof(STSQuery) + expr.TermSlots() * sizeof(TermId) +
           expr.clauses().size() * sizeof(std::vector<TermId>);
  }
};

// The three tuple kinds flowing through the system: publish a spatio-textual
// object, insert a subscription, delete a subscription (Section III).
enum class TupleKind : uint8_t {
  kObject = 0,
  kQueryInsert = 1,
  kQueryDelete = 2,
};

// One element of the merged input stream. Exactly one of {object, query} is
// meaningful depending on `kind`; deletions carry the full query (the paper
// notes "the request contains complete information of the STS query") so
// dispatchers can route them like insertions.
struct StreamTuple {
  TupleKind kind = TupleKind::kObject;
  SpatioTextualObject object;
  STSQuery query;

  // Event-time in microseconds since the stream epoch.
  int64_t event_time_us = 0;

  static StreamTuple OfObject(SpatioTextualObject o) {
    StreamTuple t;
    t.kind = TupleKind::kObject;
    t.event_time_us = o.timestamp_us;
    t.object = std::move(o);
    return t;
  }
  static StreamTuple OfInsert(STSQuery q, int64_t time_us = 0) {
    StreamTuple t;
    t.kind = TupleKind::kQueryInsert;
    t.query = std::move(q);
    t.event_time_us = time_us;
    return t;
  }
  static StreamTuple OfDelete(STSQuery q, int64_t time_us = 0) {
    StreamTuple t;
    t.kind = TupleKind::kQueryDelete;
    t.query = std::move(q);
    t.event_time_us = time_us;
    return t;
  }
};

// A (query, object) match produced by a worker and deduplicated by the
// merger before delivery to the subscriber.
struct MatchResult {
  QueryId query_id = 0;
  ObjectId object_id = 0;

  friend bool operator==(const MatchResult& a, const MatchResult& b) {
    return a.query_id == b.query_id && a.object_id == b.object_id;
  }
  friend bool operator<(const MatchResult& a, const MatchResult& b) {
    if (a.query_id != b.query_id) return a.query_id < b.query_id;
    return a.object_id < b.object_id;
  }
};

}  // namespace ps2

#endif  // PS2_CORE_QUERY_H_
