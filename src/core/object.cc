#include "core/object.h"

#include <algorithm>

namespace ps2 {

SpatioTextualObject SpatioTextualObject::FromText(ObjectId id, Point loc,
                                                  const std::string& text,
                                                  Vocabulary& vocab,
                                                  const Tokenizer& tokenizer) {
  std::vector<TermId> terms;
  for (const auto& tok : tokenizer.Tokenize(text)) {
    terms.push_back(vocab.Intern(tok));
  }
  return FromTerms(id, loc, std::move(terms));
}

SpatioTextualObject SpatioTextualObject::FromTerms(ObjectId id, Point loc,
                                                   std::vector<TermId> terms) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  SpatioTextualObject o;
  o.id = id;
  o.loc = loc;
  o.terms = std::move(terms);
  return o;
}

bool SpatioTextualObject::ContainsTerm(TermId t) const {
  return std::binary_search(terms.begin(), terms.end(), t);
}

}  // namespace ps2
