#include "core/cost_model.h"

#include <algorithm>
#include <limits>

namespace ps2 {

double WorkerLoad(const CostModel& cm, const WorkerLoadTally& t) {
  return cm.c1 * static_cast<double>(t.objects) *
             static_cast<double>(t.inserts) +
         cm.c2 * static_cast<double>(t.objects) +
         cm.c3 * static_cast<double>(t.inserts) +
         cm.c4 * static_cast<double>(t.deletes);
}

double CellLoad(uint64_t num_objects, double avg_num_queries) {
  return static_cast<double>(num_objects) * avg_num_queries;
}

double BalanceFactor(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  const double lmax = *std::max_element(loads.begin(), loads.end());
  const double lmin = *std::min_element(loads.begin(), loads.end());
  if (lmax == 0.0) return 1.0;
  if (lmin == 0.0) return std::numeric_limits<double>::infinity();
  return lmax / lmin;
}

double TotalLoad(const std::vector<double>& loads) {
  double sum = 0.0;
  for (const double l : loads) sum += l;
  return sum;
}

}  // namespace ps2
