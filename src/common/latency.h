#ifndef PS2_COMMON_LATENCY_H_
#define PS2_COMMON_LATENCY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ps2 {

// Latency histogram with logarithmic buckets from 1us to ~1000s. Tracks the
// per-tuple dwell times the paper reports (Figure 8 averages, Figures 12c
// and 15 bucket fractions) and the client API's publish->deliver latency.
// Lives in common/ because both the runtime report (RunReport) and the api
// layer (SessionStats) record into it; runtime/metrics.h re-exports it.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double micros);
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double MeanMicros() const;
  double MaxMicros() const { return max_micros_; }

  // Approximate quantile (linear interpolation within log buckets).
  double PercentileMicros(double p) const;

  // Fraction of samples strictly below `micros`.
  double FractionBelow(double micros) const;

  std::string Summary() const;

 private:
  static constexpr int kBuckets = 64;
  int BucketFor(double micros) const;
  double BucketLow(int b) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_micros_ = 0.0;
  double max_micros_ = 0.0;
};

}  // namespace ps2

#endif  // PS2_COMMON_LATENCY_H_
