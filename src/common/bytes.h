#ifndef PS2_COMMON_BYTES_H_
#define PS2_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace ps2 {

// Little-endian binary buffer primitives shared by every on-disk format
// (trace files, WAL records, checkpoints). A ByteWriter appends into an
// in-memory buffer the caller then frames/CRCs/writes as one unit; a
// ByteReader decodes with sticky error state and hard bounds checks, so a
// corrupt length field fails the read instead of driving a huge allocation.
//
// PODs are stored in native byte order; the system targets little-endian
// hosts (the same assumption trace_io has always made).
class ByteWriter {
 public:
  void Bytes(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  template <typename T>
  void Pod(T v) {
    Bytes(&v, sizeof(T));
  }
  // u32 length prefix + raw bytes.
  void Str(const std::string& s) {
    Pod<uint32_t>(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

  void Bytes(void* p, size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return;
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }
  template <typename T>
  T Pod() {
    T v{};
    Bytes(&v, sizeof(T));
    return v;
  }
  std::string Str() {
    const uint32_t n = Pod<uint32_t>();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }
  void Skip(size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return;
    }
    pos_ += n;
  }
  // Declared-count sanity gate: a container of `count` elements, each at
  // least `min_bytes_each` on disk, cannot outsize the remaining input.
  // Returns false (and poisons the reader) when it would — callers check
  // this *before* reserve/resize so flipped length fields fail cleanly.
  bool FitsCount(uint64_t count, size_t min_bytes_each) {
    if (ok_ && count <= remaining() / (min_bytes_each == 0 ? 1
                                                          : min_bytes_each)) {
      return true;
    }
    ok_ = false;
    return false;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes,
// seedable for incremental use. Frames every WAL record and checkpoint
// payload so recovery can tell a torn write from good data.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

}  // namespace ps2

#endif  // PS2_COMMON_BYTES_H_
