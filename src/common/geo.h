#ifndef PS2_COMMON_GEO_H_
#define PS2_COMMON_GEO_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace ps2 {

// A geographic coordinate. The paper uses (latitude, longitude); we keep a
// generic (x, y) plane with x = longitude-like and y = latitude-like axes.
// All spatial structures in this library operate on this plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// An axis-aligned rectangle [min_x, max_x] x [min_y, max_y]. STS query
// regions (q.R) and all index bounding boxes are Rects. A Rect is valid when
// min_* <= max_*; a default-constructed Rect is the canonical "empty" value
// (min > max) so that Expand() can start from it.
struct Rect {
  double min_x = 1.0;
  double max_x = -1.0;
  double min_y = 1.0;
  double max_y = -1.0;

  Rect() = default;
  Rect(double mnx, double mny, double mxx, double mxy)
      : min_x(mnx), max_x(mxx), min_y(mny), max_y(mxy) {}

  // Builds the rectangle centered at `c` with side lengths `w` and `h`.
  static Rect Centered(Point c, double w, double h) {
    return Rect(c.x - w / 2, c.y - h / 2, c.x + w / 2, c.y + h / 2);
  }

  bool empty() const { return min_x > max_x || min_y > max_y; }

  double width() const { return empty() ? 0.0 : max_x - min_x; }
  double height() const { return empty() ? 0.0 : max_y - min_y; }
  double Area() const { return width() * height(); }
  Point Center() const {
    return Point{(min_x + max_x) / 2, (min_y + max_y) / 2};
  }

  // Point containment uses half-open semantics on neither side: boundaries
  // are inclusive, matching the paper's "o.loc locates inside q.R".
  bool Contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const Rect& r) const {
    return !r.empty() && r.min_x >= min_x && r.max_x <= max_x &&
           r.min_y >= min_y && r.max_y <= max_y;
  }

  bool Intersects(const Rect& r) const {
    if (empty() || r.empty()) return false;
    return r.min_x <= max_x && r.max_x >= min_x && r.min_y <= max_y &&
           r.max_y >= min_y;
  }

  // Grows this rectangle to cover `p` / `r`.
  void Expand(Point p);
  void Expand(const Rect& r);

  // The overlap rectangle (empty Rect when disjoint).
  Rect Intersection(const Rect& r) const;

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.max_x == b.max_x && a.min_y == b.min_y &&
           a.max_y == b.max_y;
  }
};

// Euclidean distance on the plane.
double Distance(Point a, Point b);

}  // namespace ps2

#endif  // PS2_COMMON_GEO_H_
