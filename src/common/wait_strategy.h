#ifndef PS2_COMMON_WAIT_STRATEGY_H_
#define PS2_COMMON_WAIT_STRATEGY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace ps2 {

// How a producer or consumer waits when its queue is full / empty.
//
//   kBlocking      Park on a condition variable immediately: today's CPU
//                  profile (idle stages cost nothing), wake-up latency in
//                  the scheduler's hands.
//   kAdaptiveSpin  Spin briefly before parking, with a budget that doubles
//                  after a successful spin and halves after a park — bursty
//                  traffic is absorbed without a single futex round-trip,
//                  idle periods degrade to kBlocking's profile.
//   kBusyPoll      Bounded spin, never park. Lowest latency, one core per
//                  polling stage; only for deployments that can pin cores.
enum class WaitStrategy : uint8_t {
  kBlocking = 0,
  kAdaptiveSpin,
  kBusyPoll,
};

inline const char* WaitStrategyName(WaitStrategy strategy) {
  switch (strategy) {
    case WaitStrategy::kBlocking: return "blocking";
    case WaitStrategy::kAdaptiveSpin: return "adaptive-spin";
    case WaitStrategy::kBusyPoll: return "busy-poll";
  }
  return "unknown";
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Folly-style event count: lets a waiter park on a condition that lock-free
// producers update, without taking a lock on the producers' fast path.
//
//   waiter:   seen = PrepareWait(); if (ready()) CancelWait();
//             else CommitWait(seen);
//   notifier: make ready() true, then Notify().
//
// The seq_cst ordering between the waiter registration (an RMW) and the
// notifier's epoch bump is load-bearing: either the waiter's post-Prepare
// re-check observes the state change, or the notifier observes the waiter
// and bumps the epoch it is about to sleep on — a lost wakeup would need
// both sides to miss each other, which the total order forbids.
class EventCount {
 public:
  uint64_t PrepareWait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void CancelWait() { waiters_.fetch_sub(1, std::memory_order_release); }

  void CommitWait(uint64_t seen) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_relaxed) != seen;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  void Notify() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) != 0) {
      // The lock orders this notify after a committing waiter's predicate
      // check, so the notify cannot fire in the window between the check
      // and the sleep.
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }

 private:
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> waiters_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

// Per-thread wait loop implementing one WaitStrategy, with the adaptive
// budget and the spin/park counters the RunReport exports. Await() returns
// once `ready()` was observed true — except under kBusyPoll, which returns
// after a bounded spin regardless, so callers re-check their own condition
// in a loop:
//
//   while (!cond()) ctx.Await(ec, cond);
//
// Not thread-safe: one WaitContext per waiting thread (and the counters are
// read only after that thread is joined).
class WaitContext {
 public:
  explicit WaitContext(WaitStrategy strategy) : strategy_(strategy) {}

  template <typename Pred>
  void Await(EventCount& ec, Pred&& ready) {
    const int limit =
        strategy_ == WaitStrategy::kBlocking ? 1 : budget_;
    for (int i = 0; i < limit; ++i) {
      if (ready()) {
        spins_ += static_cast<uint64_t>(i);
        if (strategy_ == WaitStrategy::kAdaptiveSpin && i > 0) {
          budget_ = budget_ * 2 > kMaxBudget ? kMaxBudget : budget_ * 2;
        }
        return;
      }
      // Yield periodically: on a box with fewer cores than runnable
      // threads, a pure pause loop would spin against the very thread it
      // is waiting for.
      if ((i & 63) == 63) {
        std::this_thread::yield();
      } else {
        CpuRelax();
      }
    }
    spins_ += static_cast<uint64_t>(limit);
    if (strategy_ == WaitStrategy::kBusyPoll) return;
    if (strategy_ == WaitStrategy::kAdaptiveSpin) {
      budget_ = budget_ / 2 < kMinBudget ? kMinBudget : budget_ / 2;
    }
    const uint64_t seen = ec.PrepareWait();
    if (ready()) {
      ec.CancelWait();
      return;
    }
    ++parks_;
    ec.CommitWait(seen);
  }

  uint64_t spins() const { return spins_; }
  uint64_t parks() const { return parks_; }
  WaitStrategy strategy() const { return strategy_; }

 private:
  static constexpr int kMinBudget = 64;
  static constexpr int kMaxBudget = 4096;

  WaitStrategy strategy_;
  int budget_ = 256;
  uint64_t spins_ = 0;
  uint64_t parks_ = 0;
};

}  // namespace ps2

#endif  // PS2_COMMON_WAIT_STRATEGY_H_
