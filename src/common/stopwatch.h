#ifndef PS2_COMMON_STOPWATCH_H_
#define PS2_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ps2 {

// Monotonic wall-clock stopwatch used by the runtime metrics and benchmark
// harness. Resolution is the steady_clock's (nanoseconds on Linux).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();

  // Elapsed time since construction / last Restart().
  double ElapsedSeconds() const;
  int64_t ElapsedMicros() const;
  int64_t ElapsedNanos() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

// Current steady-clock time in microseconds; the runtime stamps tuples with
// this to compute per-tuple latency.
int64_t NowMicros();

}  // namespace ps2

#endif  // PS2_COMMON_STOPWATCH_H_
