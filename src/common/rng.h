#ifndef PS2_COMMON_RNG_H_
#define PS2_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ps2 {

// Deterministic, fast pseudo-random generator (xoshiro256**). Every
// stochastic component of the library (workload generators, the RA migration
// baseline, sampling) takes an explicit Rng so experiments are reproducible
// from a seed. Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  uint64_t Next();

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller, scaled to N(mean, stddev^2).
  double NextGaussian(double mean, double stddev);

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Splits off an independent generator (for per-thread / per-component
  // streams) without correlating with this one.
  Rng Split();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Samples from a Zipf distribution over {0, 1, ..., n-1} with exponent `s`
// (rank-frequency power law: P(k) ~ 1/(k+1)^s). Used to generate term
// frequencies matching the paper's observation that tweet keywords follow a
// power-law distribution. Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

  // Probability mass of rank k (for tests and analytics).
  double Pmf(size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace ps2

#endif  // PS2_COMMON_RNG_H_
