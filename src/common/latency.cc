#include "common/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ps2 {

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::BucketFor(double micros) const {
  if (micros <= 1.0) return 0;
  // ~2.3 buckets per decade: bucket = floor(log2(us) * 2) capped.
  const int b = static_cast<int>(std::log2(micros) * 2.0);
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::BucketLow(int b) const {
  return std::pow(2.0, b / 2.0);
}

void LatencyHistogram::Record(double micros) {
  micros = std::max(micros, 0.0);
  buckets_[BucketFor(micros)]++;
  ++count_;
  sum_micros_ += micros;
  max_micros_ = std::max(max_micros_, micros);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_micros_ += other.sum_micros_;
  max_micros_ = std::max(max_micros_, other.max_micros_);
}

double LatencyHistogram::MeanMicros() const {
  return count_ == 0 ? 0.0 : sum_micros_ / static_cast<double>(count_);
}

double LatencyHistogram::PercentileMicros(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p * static_cast<double>(count_);
  uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (cum + buckets_[b] >= target) {
      const double lo = BucketLow(b);
      const double hi = BucketLow(b + 1);
      const double within =
          buckets_[b] == 0
              ? 0.0
              : (target - static_cast<double>(cum)) / buckets_[b];
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cum += buckets_[b];
  }
  return max_micros_;
}

double LatencyHistogram::FractionBelow(double micros) const {
  if (count_ == 0) return 0.0;
  uint64_t below = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const double hi = BucketLow(b + 1);
    if (hi <= micros) {
      below += buckets_[b];
    } else if (BucketLow(b) < micros) {
      // Partial bucket: assume uniform within.
      const double frac = (micros - BucketLow(b)) / (hi - BucketLow(b));
      below += static_cast<uint64_t>(buckets_[b] * frac);
    }
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus "
                "max=%.1fus",
                static_cast<unsigned long long>(count_), MeanMicros(),
                PercentileMicros(0.50), PercentileMicros(0.95),
                PercentileMicros(0.99), max_micros_);
  return buf;
}

}  // namespace ps2
