#ifndef PS2_COMMON_DEDUP_WINDOW_H_
#define PS2_COMMON_DEDUP_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>

namespace ps2 {

// Concurrent (query, object) duplicate filter: the merger's FIFO-window
// semantics, lock-striped so worker threads deduplicate on the match path
// without a global serialization point. Duplicates arise whenever a query
// is stored on several workers (wide regions, multi-term text routing,
// live-migration copies) and an object reaches more than one of them; the
// stream is roughly ordered by object id, so duplicates of a pair arrive
// close together and a bounded window suffices.
//
// Keys hash-stripe across 64 shards; each shard holds 1/64 of the window
// and its own mutex, so concurrent AcceptFresh calls only collide when two
// matches land in the same shard. A collision between two distinct pairs'
// 64-bit keys only suppresses one delivery (same trade the merger makes).
class ShardedDedupWindow {
 public:
  explicit ShardedDedupWindow(size_t window_capacity = 1 << 20) {
    const size_t per_shard = window_capacity / kShards;
    for (auto& s : shards_) s.capacity = per_shard < 16 ? 16 : per_shard;
  }

  ShardedDedupWindow(const ShardedDedupWindow&) = delete;
  ShardedDedupWindow& operator=(const ShardedDedupWindow&) = delete;

  // True when (query, object) was not seen within the window: the match is
  // fresh and should be delivered. Thread-safe.
  bool AcceptFresh(uint64_t query_id, uint64_t object_id) {
    const uint64_t key = Key(query_id, object_id);
    Shard& s = shards_[key >> 58];  // top 6 bits -> 64 shards
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.seen.insert(key).second) {
      ++s.duplicates;
      return false;
    }
    s.fifo.push_back(key);
    if (s.fifo.size() > s.capacity) {
      s.seen.erase(s.fifo.front());
      s.fifo.pop_front();
    }
    ++s.fresh;
    return true;
  }

  uint64_t fresh() const { return Sum(&Shard::fresh); }
  uint64_t duplicates() const { return Sum(&Shard::duplicates); }

  size_t MemoryBytes() const {
    size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total += s.seen.size() * (sizeof(uint64_t) + 16) +
               s.fifo.size() * sizeof(uint64_t);
    }
    return total;
  }

 private:
  // Same 64-bit mix as the merger, so both filters agree on which pairs
  // alias (the audit mode compares their verdicts one to one).
  static uint64_t Key(uint64_t query_id, uint64_t object_id) {
    uint64_t h = query_id * 0x9E3779B97F4A7C15ULL;
    h ^= object_id + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  }

  static constexpr size_t kShards = 64;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_set<uint64_t> seen;
    std::deque<uint64_t> fifo;
    size_t capacity = 0;
    uint64_t fresh = 0;
    uint64_t duplicates = 0;
  };

  uint64_t Sum(uint64_t Shard::* field) const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total += s.*field;
    }
    return total;
  }

  Shard shards_[kShards];
};

}  // namespace ps2

#endif  // PS2_COMMON_DEDUP_WINDOW_H_
