#ifndef PS2_COMMON_FLAT_MAP_H_
#define PS2_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace ps2 {

// Open-addressing hash map with linear probing over one contiguous entry
// array — the cache-friendly replacement for the nested unordered_maps on
// the worker hot path (GI2 postings, query-id -> slot). A lookup touches one
// cache line per probe step instead of chasing a bucket list, and the whole
// table is two allocations (entries + states) regardless of size.
//
// Restricted by design to trivially copyable keys and values (ids, offsets,
// posting-list heads): entries are moved with plain assignment during rehash
// and erase leaves tombstones without destructor bookkeeping. Erased slots
// are reclaimed on the next rehash.
template <typename K, typename V>
class FlatMap {
  static_assert(std::is_trivially_copyable<K>::value,
                "FlatMap keys must be trivially copyable");
  static_assert(std::is_trivially_copyable<V>::value,
                "FlatMap values must be trivially copyable");

 public:
  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return entries_.size(); }

  // Pointer to the value for `key`, or nullptr. Never allocates.
  V* Find(K key) {
    if (entries_.empty()) return nullptr;
    const size_t mask = entries_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return nullptr;
      if (states_[i] == kFull && entries_[i].key == key) {
        return &entries_[i].value;
      }
    }
  }
  const V* Find(K key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  // Value for `key`, default-constructed and inserted if absent.
  V& operator[](K key) {
    if (entries_.empty() || (used_ + 1) * 8 > entries_.size() * 7) {
      Rehash(NextCapacity());
    }
    const size_t mask = entries_.size() - 1;
    size_t insert_at = SIZE_MAX;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kFull) {
        if (entries_[i].key == key) return entries_[i].value;
        continue;
      }
      if (states_[i] == kTombstone) {
        if (insert_at == SIZE_MAX) insert_at = i;
        continue;
      }
      // Empty: the key is definitely absent.
      if (insert_at == SIZE_MAX) {
        insert_at = i;
        ++used_;  // tombstone reuse does not consume a fresh slot
      }
      break;
    }
    states_[insert_at] = kFull;
    entries_[insert_at].key = key;
    entries_[insert_at].value = V{};
    ++size_;
    return entries_[insert_at].value;
  }

  // Removes `key`; returns whether it was present. Leaves a tombstone that
  // the next rehash reclaims.
  bool Erase(K key) {
    if (entries_.empty()) return false;
    const size_t mask = entries_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return false;
      if (states_[i] == kFull && entries_[i].key == key) {
        states_[i] = kTombstone;
        --size_;
        return true;
      }
    }
  }

  void Clear() {
    states_.assign(states_.size(), kEmpty);
    size_ = used_ = 0;
  }

  // Calls f(key, value&) for every live entry, in table order.
  template <typename F>
  void ForEach(F&& f) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (states_[i] == kFull) f(entries_[i].key, entries_[i].value);
    }
  }
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (states_[i] == kFull) f(entries_[i].key, entries_[i].value);
    }
  }

  size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Entry) + states_.capacity();
  }

 private:
  struct Entry {
    K key;
    V value;
  };
  enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  // splitmix64 finalizer: integer keys here are dense ids, so identity
  // hashing would cluster badly under linear probing.
  static size_t Hash(K key) {
    uint64_t x = static_cast<uint64_t>(key);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  size_t NextCapacity() const {
    // Size for the live entries only: rehash drops tombstones, so a table
    // churning through Erase does not grow without bound.
    size_t cap = 8;
    while ((size_ + 1) * 8 > cap * 7) cap *= 2;
    return cap < entries_.size() ? entries_.size() : cap;
  }

  void Rehash(size_t new_capacity) {
    std::vector<Entry> old_entries = std::move(entries_);
    std::vector<uint8_t> old_states = std::move(states_);
    entries_.assign(new_capacity, Entry{});
    states_.assign(new_capacity, kEmpty);
    used_ = size_;
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_entries.size(); ++i) {
      if (old_states[i] != kFull) continue;
      size_t j = Hash(old_entries[i].key) & mask;
      while (states_[j] == kFull) j = (j + 1) & mask;
      states_[j] = kFull;
      entries_[j] = old_entries[i];
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint8_t> states_;  // kEmpty / kFull / kTombstone per entry
  size_t size_ = 0;  // live entries
  size_t used_ = 0;  // live + tombstoned slots (probe-chain occupancy)
};

}  // namespace ps2

#endif  // PS2_COMMON_FLAT_MAP_H_
