#include "common/rng.h"

#include <cmath>

namespace ps2 {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the 256-bit state from SplitMix64, the recommended procedure for
  // the xoshiro family (avoids all-zero states and poor low-entropy seeds).
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for
  // our n << 2^64 use cases but we reject to keep it exact.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    const uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::Split() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search the first CDF entry >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ps2
