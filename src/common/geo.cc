#include "common/geo.h"

#include <cstdio>

namespace ps2 {

void Rect::Expand(Point p) {
  if (empty()) {
    min_x = max_x = p.x;
    min_y = max_y = p.y;
    return;
  }
  min_x = std::min(min_x, p.x);
  max_x = std::max(max_x, p.x);
  min_y = std::min(min_y, p.y);
  max_y = std::max(max_y, p.y);
}

void Rect::Expand(const Rect& r) {
  if (r.empty()) return;
  if (empty()) {
    *this = r;
    return;
  }
  min_x = std::min(min_x, r.min_x);
  max_x = std::max(max_x, r.max_x);
  min_y = std::min(min_y, r.min_y);
  max_y = std::max(max_y, r.max_y);
}

Rect Rect::Intersection(const Rect& r) const {
  if (!Intersects(r)) return Rect();
  return Rect(std::max(min_x, r.min_x), std::max(min_y, r.min_y),
              std::min(max_x, r.max_x), std::min(max_y, r.max_y));
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.4f,%.4f]x[%.4f,%.4f]", min_x, max_x,
                min_y, max_y);
  return buf;
}

double Distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace ps2
